#include "core/remedy.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/pipeline_metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/ranker.h"

namespace remedy {
namespace {

constexpr double kZeroRatioEpsilon = 1e-12;

int64_t ClampCount(double value, int64_t lo, int64_t hi) {
  int64_t rounded = std::llround(value);
  return std::clamp(rounded, lo, hi);
}

// Independent RNG stream per region, keyed by its node and region key. The
// stream does not depend on row numbering or processing order, so both
// engines (and any planning thread count) draw identical sequences for the
// same region.
uint64_t RegionSeed(uint64_t seed, uint32_t mask, uint64_t key) {
  return SplitMix64(SplitMix64(seed ^ (uint64_t{mask} << 32)) ^ key);
}

// Ranks `rows` (instances of class `label`) most-borderline-first; the two
// engines bind this to a fresh model evaluation or to the score cache.
using RankFn = std::function<std::vector<int>(const std::vector<int>& rows,
                                              int label)>;

// The concrete rows one region's remedy wants to touch. Planning is a pure
// read of the working set, so the plans of one node's (disjoint) regions can
// be computed in parallel; stats and the oversampling budget are settled in
// a deterministic merge pass afterwards.
struct RegionPlan {
  std::vector<int> to_flip;
  std::vector<int> to_remove;
  std::vector<int> duplicates;
  int64_t requested_adds = 0;  // oversampling demand before any budget cap
  bool skipped = false;        // unreachable target or empty source
  bool planned = false;        // the region had a non-trivial update
};

RegionPlan PlanRegion(RemedyTechnique technique, const RegionUpdate& update,
                      const std::vector<int>& positive_rows,
                      const std::vector<int>& negative_rows,
                      const RankFn& rank, Rng& rng, int64_t add_cap) {
  RegionPlan plan;
  plan.planned = true;

  // Pulls the concrete rows for one class-side delta.
  auto pick_random = [&rng](const std::vector<int>& source, int64_t count,
                            bool with_replacement) {
    std::vector<int> picked;
    if (source.empty() || count <= 0) return picked;
    if (with_replacement) {
      picked.reserve(count);
      for (int64_t i = 0; i < count; ++i) {
        picked.push_back(
            source[rng.UniformInt(static_cast<int>(source.size()))]);
      }
    } else {
      std::vector<int> indices = rng.SampleWithoutReplacement(
          static_cast<int>(source.size()),
          static_cast<int>(std::min<int64_t>(count, source.size())));
      for (int index : indices) picked.push_back(source[index]);
    }
    return picked;
  };

  auto pick_borderline = [&rank](const std::vector<int>& source, int label,
                                 int64_t count, bool allow_repeat) {
    std::vector<int> picked;
    if (source.empty() || count <= 0) return picked;
    std::vector<int> ranked = rank(source, label);
    picked.reserve(count);
    for (int64_t i = 0; i < count; ++i) {
      if (!allow_repeat && i >= static_cast<int64_t>(ranked.size())) break;
      picked.push_back(ranked[i % ranked.size()]);
    }
    return picked;
  };

  switch (technique) {
    case RemedyTechnique::kOversample: {
      const std::vector<int>& source =
          update.delta_negatives > 0 ? negative_rows : positive_rows;
      int64_t want =
          std::max(update.delta_negatives, update.delta_positives);
      plan.requested_adds = want;
      if (source.empty()) {
        plan.skipped = true;  // nothing to duplicate from
        break;
      }
      // The merge pass cuts the plan to the exact sequential budget; the
      // cap only bounds the work of planning far past an exhausted budget.
      if (add_cap >= 0) want = std::min(want, add_cap);
      plan.duplicates = pick_random(source, want, /*with_replacement=*/true);
      break;
    }
    case RemedyTechnique::kUndersample: {
      int64_t remove_positives =
          -std::min<int64_t>(update.delta_positives, 0);
      int64_t remove_negatives =
          -std::min<int64_t>(update.delta_negatives, 0);
      plan.to_remove = pick_random(positive_rows, remove_positives, false);
      std::vector<int> picked_neg =
          pick_random(negative_rows, remove_negatives, false);
      plan.to_remove.insert(plan.to_remove.end(), picked_neg.begin(),
                            picked_neg.end());
      break;
    }
    case RemedyTechnique::kPreferentialSampling: {
      // Duplication draws from the other class; with no instance to
      // duplicate the exchange cannot move the ratio toward the target.
      const std::vector<int>& duplication_source =
          update.delta_positives < 0 ? negative_rows : positive_rows;
      if (duplication_source.empty()) {
        plan.skipped = true;
        break;
      }
      if (update.delta_positives < 0) {
        // Drop borderline positives, duplicate borderline negatives.
        plan.to_remove = pick_borderline(positive_rows, 1,
                                         -update.delta_positives, false);
        plan.duplicates = pick_borderline(negative_rows, 0,
                                          update.delta_negatives, true);
      } else {
        plan.to_remove = pick_borderline(negative_rows, 0,
                                         -update.delta_negatives, false);
        plan.duplicates = pick_borderline(positive_rows, 1,
                                          update.delta_positives, true);
      }
      break;
    }
    case RemedyTechnique::kMassaging: {
      const bool flip_positives = update.delta_positives < 0;
      plan.to_flip = pick_borderline(
          flip_positives ? positive_rows : negative_rows,
          flip_positives ? 1 : 0, update.flips, false);
      break;
    }
  }
  return plan;
}

// The row lists one node visit commits to the working set.
struct NodeActions {
  std::vector<int> to_flip;
  std::vector<int> to_remove;
  std::vector<int> duplicates;
};

// Settles one node's plans in region order: budget truncation for
// oversampling, skip/processed accounting. Deterministic regardless of how
// the plans were computed, which is what makes parallel planning safe.
NodeActions MergeNodePlans(std::vector<RegionPlan>& plans,
                           const RemedyParams& params, RemedyStats& stats) {
  NodeActions actions;
  for (RegionPlan& plan : plans) {
    if (plan.skipped) {
      ++stats.regions_skipped;
      continue;
    }
    if (!plan.planned) continue;
    if (params.technique == RemedyTechnique::kOversample &&
        params.max_added_total >= 0) {
      const int64_t budget =
          params.max_added_total - stats.instances_added -
          static_cast<int64_t>(actions.duplicates.size());
      if (plan.requested_adds > budget) {
        stats.add_budget_exhausted = true;
        const int64_t keep =
            std::clamp<int64_t>(budget, 0,
                                static_cast<int64_t>(plan.duplicates.size()));
        plan.duplicates.resize(keep);
      }
    }
    const bool acted = !plan.to_flip.empty() || !plan.to_remove.empty() ||
                       !plan.duplicates.empty();
    actions.to_flip.insert(actions.to_flip.end(), plan.to_flip.begin(),
                           plan.to_flip.end());
    actions.to_remove.insert(actions.to_remove.end(), plan.to_remove.begin(),
                             plan.to_remove.end());
    actions.duplicates.insert(actions.duplicates.end(),
                              plan.duplicates.begin(), plan.duplicates.end());
    if (acted) ++stats.regions_processed;
  }
  return actions;
}

bool NeedsRanker(RemedyTechnique technique) {
  return technique == RemedyTechnique::kPreferentialSampling ||
         technique == RemedyTechnique::kMassaging;
}

// ---------------------------------------------------------------------------
// Rebuild-from-scratch reference engine: the lattice is invalidated and the
// dataset copied after every node that changed. Kept as the equivalence
// oracle for the incremental engine (and for measuring its speedup).
// ---------------------------------------------------------------------------

Dataset RemedyRebuild(const Dataset& train, const RemedyParams& params,
                      RemedyStats* stats_out) {
  Dataset working = train;
  RemedyStats stats;

  // The ranker is trained once on the original data, as in the paper's
  // "train the ranker" step; it scores rows of the evolving working set.
  std::unique_ptr<BorderlineRanker> ranker;
  if (NeedsRanker(params.technique)) {
    ranker = std::make_unique<BorderlineRanker>(train);
  }

  Hierarchy hierarchy(working);
  hierarchy.SetCountingBackend(params.ibs.backend, params.ibs.backend_threads);
  for (uint32_t mask : ScopeMasks(hierarchy, params.ibs.scope)) {
    REMEDY_TRACE_SPAN_ARG("remedy/node", mask);
    std::vector<BiasedRegion> biased =
        IdentifyIbsInNode(hierarchy, mask, params.ibs);
    if (biased.empty()) continue;

    auto rows_by_key = hierarchy.counter().CollectRows(working, mask);
    std::vector<RegionPlan> plans(biased.size());
    for (size_t i = 0; i < biased.size(); ++i) {
      REMEDY_TRACE_SPAN("remedy/plan_region");
      const BiasedRegion& region = biased[i];
      RegionUpdate update =
          ComputeUpdate(params.technique, region.counts.positives,
                        region.counts.negatives, region.neighbor_ratio);
      if (!update.reachable) {
        plans[i].skipped = true;
        continue;
      }
      if (update.delta_positives == 0 && update.delta_negatives == 0) {
        continue;  // rounding left nothing to do
      }
      const uint64_t key = hierarchy.counter().KeyFor(region.pattern, mask);
      const std::vector<int>& region_rows = rows_by_key.at(key);
      std::vector<int> positive_rows, negative_rows;
      for (int row : region_rows) {
        (working.Label(row) == 1 ? positive_rows : negative_rows)
            .push_back(row);
      }
      Rng rng(RegionSeed(params.seed, mask, key));
      RankFn rank = [&working, &ranker](const std::vector<int>& rows,
                                        int label) {
        return ranker->RankBorderline(working, rows, label);
      };
      plans[i] = PlanRegion(params.technique, update, positive_rows,
                            negative_rows, rank, rng, params.max_added_total);
    }

    NodeActions actions = MergeNodePlans(plans, params, stats);
    if (actions.to_flip.empty() && actions.duplicates.empty() &&
        actions.to_remove.empty()) {
      continue;
    }

    for (int row : actions.to_flip) {
      working.SetLabel(row, 1 - working.Label(row));
    }
    for (int row : actions.duplicates) working.AppendRowFrom(working, row);
    if (!actions.to_remove.empty()) working = working.Remove(actions.to_remove);

    stats.labels_flipped += static_cast<int64_t>(actions.to_flip.size());
    stats.instances_added += static_cast<int64_t>(actions.duplicates.size());
    stats.instances_removed +=
        static_cast<int64_t>(actions.to_remove.size());
    hierarchy.Invalidate();
  }

  if (stats_out != nullptr) *stats_out = stats;
  return working;
}

// ---------------------------------------------------------------------------
// Incremental engine.
// ---------------------------------------------------------------------------

// Mutable view of the training copy the incremental engine remedies:
// removals tombstone the alive mask (compacted once at the end), appends go
// at the tail, and every row carries its leaf region key and — when a ranker
// is in play — its cached borderline score. `leaf_rows` buckets row indices
// by leaf key; buckets keep tombstoned rows (readers filter on `alive`), so
// maintenance is append-only.
struct WorkingSet {
  Dataset data;
  std::vector<char> alive;
  std::vector<uint64_t> leaf_keys;
  std::unordered_map<uint64_t, std::vector<int>> leaf_rows;
  std::vector<double> scores;  // empty unless the technique ranks rows
};

// Rows of each biased region of node `mask`, alive only, ascending by row
// index (the order CollectRows-based planning sees). Two gather strategies,
// chosen by cost: enumerate the leaf keys projecting into each region (cheap
// near the leaves, where few attributes are free), or sweep every leaf
// bucket once and route it to the region its projection hits (cheap near the
// root, where a region's leaf support approaches the whole table).
std::vector<std::vector<int>> GatherRegionRows(
    const WorkingSet& ws, const Hierarchy& hierarchy, uint32_t mask,
    const std::vector<BiasedRegion>& biased) {
  const RegionCounter& counter = hierarchy.counter();
  const uint32_t leaf = hierarchy.LeafMask();
  const int num_protected = counter.NumProtected();
  std::vector<std::vector<int>> region_rows(biased.size());

  auto append_alive = [&ws](const std::vector<int>& bucket,
                            std::vector<int>* out) {
    for (int row : bucket) {
      if (ws.alive[row]) out->push_back(row);
    }
  };

  const uint64_t missing_space = counter.KeySpace(leaf & ~mask);
  const uint64_t enumerate_cost =
      missing_space * static_cast<uint64_t>(biased.size());
  if (enumerate_cost <= ws.leaf_rows.size()) {
    for (size_t i = 0; i < biased.size(); ++i) {
      // Odometer over the free (non-deterministic) positions: every value
      // combination completes the region pattern to one leaf key.
      std::vector<int> values(num_protected, 0);
      std::vector<int> free_positions;
      for (int p = 0; p < num_protected; ++p) {
        if (mask & (1u << p)) {
          values[p] = biased[i].pattern.Value(p);
        } else {
          free_positions.push_back(p);
        }
      }
      for (;;) {
        uint64_t key = 0;
        for (int p = 0; p < num_protected; ++p) {
          key = key * counter.Cardinality(p) +
                static_cast<uint64_t>(values[p]);
        }
        auto it = ws.leaf_rows.find(key);
        if (it != ws.leaf_rows.end()) {
          append_alive(it->second, &region_rows[i]);
        }
        int d = static_cast<int>(free_positions.size()) - 1;
        for (; d >= 0; --d) {
          const int p = free_positions[d];
          if (++values[p] < counter.Cardinality(p)) break;
          values[p] = 0;
        }
        if (d < 0) break;
      }
    }
  } else {
    std::unordered_map<uint64_t, size_t> wanted;
    wanted.reserve(biased.size() * 2);
    for (size_t i = 0; i < biased.size(); ++i) {
      wanted.emplace(counter.KeyFor(biased[i].pattern, mask), i);
    }
    for (const auto& [leaf_key, bucket] : ws.leaf_rows) {
      auto it = wanted.find(counter.ProjectKey(leaf_key, leaf, mask));
      if (it == wanted.end()) continue;
      append_alive(bucket, &region_rows[it->second]);
    }
  }
  for (std::vector<int>& rows : region_rows) {
    std::sort(rows.begin(), rows.end());
  }
  return region_rows;
}

StatusOr<Dataset> RemedyIncremental(const Dataset& train,
                                    const RemedyParams& params,
                                    RemedyStats* stats_out) {
  RemedyStats stats;
  const int threads = params.planning_threads > 0
                          ? params.planning_threads
                          : ThreadPool::DefaultThreads();

  WorkingSet ws;
  ws.data = train;
  ws.alive.assign(train.NumRows(), 1);

  std::unique_ptr<BorderlineRanker> ranker;
  if (NeedsRanker(params.technique)) {
    ranker = std::make_unique<BorderlineRanker>(train);
    ws.scores = ranker->ScoreAll(ws.data);
  }

  // One full lattice build; from here on every count moves by deltas only,
  // so the (append-only, tombstoned) dataset is never rescanned.
  Hierarchy hierarchy(ws.data);
  hierarchy.SetCountingBackend(params.ibs.backend, params.ibs.backend_threads);
  RETURN_IF_ERROR(hierarchy.EagerBuild(threads));
  const uint32_t leaf = hierarchy.LeafMask();
  const RegionCounter& counter = hierarchy.counter();
  ws.leaf_keys.resize(train.NumRows());
  for (int r = 0; r < train.NumRows(); ++r) {
    ws.leaf_keys[r] = counter.RowKey(ws.data, r, leaf);
    ws.leaf_rows[ws.leaf_keys[r]].push_back(r);
  }

  std::unique_ptr<ThreadPool> pool;
  for (uint32_t mask : ScopeMasks(hierarchy, params.ibs.scope)) {
    REMEDY_TRACE_SPAN_ARG("remedy/node", mask);
    std::vector<BiasedRegion> biased =
        IdentifyIbsInNode(hierarchy, mask, params.ibs);
    if (biased.empty()) continue;

    std::vector<std::vector<int>> region_rows =
        GatherRegionRows(ws, hierarchy, mask, biased);

    // Regions of one node are disjoint and planning only reads the working
    // set, so the per-region work fans out; the merge below is ordered.
    std::vector<RegionPlan> plans(biased.size());
    // Regions past this visit's budget headroom cannot add rows anyway.
    const int64_t add_cap =
        params.max_added_total >= 0
            ? std::max<int64_t>(params.max_added_total - stats.instances_added,
                                0)
            : -1;
    auto plan_one = [&](int64_t i) {
      REMEDY_TRACE_SPAN("remedy/plan_region");
      const BiasedRegion& region = biased[i];
      RegionUpdate update =
          ComputeUpdate(params.technique, region.counts.positives,
                        region.counts.negatives, region.neighbor_ratio);
      if (!update.reachable) {
        plans[i].skipped = true;
        return;
      }
      if (update.delta_positives == 0 && update.delta_negatives == 0) {
        return;  // rounding left nothing to do
      }
      std::vector<int> positive_rows, negative_rows;
      for (int row : region_rows[i]) {
        (ws.data.Label(row) == 1 ? positive_rows : negative_rows)
            .push_back(row);
      }
      REMEDY_DCHECK(static_cast<int64_t>(positive_rows.size()) ==
                        region.counts.positives &&
                    static_cast<int64_t>(negative_rows.size()) ==
                        region.counts.negatives)
          << "delta-maintained counts diverged from the row index";
      const uint64_t key = counter.KeyFor(region.pattern, mask);
      Rng rng(RegionSeed(params.seed, mask, key));
      RankFn rank = [&ws](const std::vector<int>& rows, int label) {
        return BorderlineRanker::RankWithScores(ws.scores, rows, label);
      };
      plans[i] = PlanRegion(params.technique, update, positive_rows,
                            negative_rows, rank, rng, add_cap);
    };
    if (threads > 1 && biased.size() > 1) {
      if (pool == nullptr) pool = std::make_unique<ThreadPool>(threads);
      RETURN_IF_ERROR(
          pool->ParallelFor(static_cast<int64_t>(biased.size()), plan_one));
    } else {
      for (size_t i = 0; i < biased.size(); ++i) plan_one(i);
    }

    NodeActions actions = MergeNodePlans(plans, params, stats);
    if (actions.to_flip.empty() && actions.duplicates.empty() &&
        actions.to_remove.empty()) {
      continue;
    }

    // Commit the visit and fold its net effect into one delta per touched
    // leaf region. Flips first, then appends, then tombstones — the order
    // the rebuild engine mutates in.
    std::unordered_map<uint64_t, std::pair<int64_t, int64_t>> net;
    for (int row : actions.to_flip) {
      const int old_label = ws.data.Label(row);
      ws.data.SetLabel(row, 1 - old_label);
      auto& d = net[ws.leaf_keys[row]];
      d.first += old_label == 1 ? -1 : 1;
      d.second += old_label == 1 ? 1 : -1;
    }
    for (int row : actions.duplicates) {
      const int new_row = ws.data.NumRows();
      ws.data.AppendRowFrom(ws.data, row);
      ws.alive.push_back(1);
      const uint64_t leaf_key = ws.leaf_keys[row];
      ws.leaf_keys.push_back(leaf_key);
      ws.leaf_rows[leaf_key].push_back(new_row);
      if (!ws.scores.empty()) ws.scores.push_back(ws.scores[row]);
      auto& d = net[leaf_key];
      (ws.data.Label(new_row) == 1 ? d.first : d.second) += 1;
    }
    for (int row : actions.to_remove) {
      REMEDY_DCHECK(ws.alive[row]);
      ws.alive[row] = 0;
      auto& d = net[ws.leaf_keys[row]];
      (ws.data.Label(row) == 1 ? d.first : d.second) -= 1;
    }

    std::vector<Hierarchy::LeafDelta> deltas;
    deltas.reserve(net.size());
    for (const auto& [leaf_key, d] : net) {
      if (d.first == 0 && d.second == 0) continue;
      deltas.push_back({leaf_key, d.first, d.second});
    }
    hierarchy.ApplyDeltas(deltas);

    stats.labels_flipped += static_cast<int64_t>(actions.to_flip.size());
    stats.instances_added += static_cast<int64_t>(actions.duplicates.size());
    stats.instances_removed +=
        static_cast<int64_t>(actions.to_remove.size());
  }

  if (stats_out != nullptr) *stats_out = stats;
  if (stats.instances_removed == 0) return std::move(ws.data);
  return ws.data.Compact(ws.alive);
}

}  // namespace

std::string TechniqueName(RemedyTechnique technique) {
  switch (technique) {
    case RemedyTechnique::kOversample:
      return "Oversample";
    case RemedyTechnique::kUndersample:
      return "Undersample";
    case RemedyTechnique::kPreferentialSampling:
      return "PreferentialSampling";
    case RemedyTechnique::kMassaging:
      return "Massaging";
  }
  REMEDY_CHECK(false) << "unknown technique";
  return "";
}

RegionUpdate ComputeUpdate(RemedyTechnique technique, int64_t positives,
                           int64_t negatives, double target_ratio) {
  RegionUpdate update;
  const double P = static_cast<double>(positives);
  const double N = static_cast<double>(negatives);

  // Neighborhood is all-positive: the target is "no negatives".
  if (target_ratio == kAllPositiveRatio) {
    if (negatives == 0) return update;  // already matching
    switch (technique) {
      case RemedyTechnique::kOversample:
        // Adding instances can never empty the negative side.
        update.reachable = false;
        return update;
      case RemedyTechnique::kUndersample:
        update.delta_negatives = -negatives;
        return update;
      case RemedyTechnique::kPreferentialSampling:
        update.delta_negatives = -negatives;
        update.delta_positives = negatives;
        return update;
      case RemedyTechnique::kMassaging:
        update.delta_negatives = -negatives;
        update.delta_positives = negatives;
        update.flips = negatives;
        return update;
    }
  }

  const double t = target_ratio;
  const double current = ImbalanceScore(positives, negatives);
  // A region with no negatives has conceptually infinite imbalance, so it
  // sits on the "too positive" side of any finite target.
  const bool too_positive =
      (current == kAllPositiveRatio) || (current > t);
  if (!too_positive && current == t) return update;  // already matching

  switch (technique) {
    case RemedyTechnique::kOversample:
      if (too_positive) {
        if (t <= kZeroRatioEpsilon) {
          update.reachable = false;  // cannot reach ratio 0 by adding rows
          return update;
        }
        update.delta_negatives =
            ClampCount(P / t - N, 0, std::numeric_limits<int64_t>::max());
      } else {
        update.delta_positives =
            ClampCount(t * N - P, 0, std::numeric_limits<int64_t>::max());
      }
      return update;

    case RemedyTechnique::kUndersample:
      if (too_positive) {
        update.delta_positives = -ClampCount(P - t * N, 0, positives);
      } else {
        REMEDY_DCHECK(t > kZeroRatioEpsilon);  // t > current >= 0
        update.delta_negatives = -ClampCount(N - P / t, 0, negatives);
      }
      return update;

    case RemedyTechnique::kPreferentialSampling: {
      // (P -+ k) / (N +- k) = t  =>  k = |P - t N| / (1 + t).
      // Only the removal side is bounded by the class population; the
      // duplicated borderline instances may repeat.
      if (too_positive) {
        int64_t k = ClampCount((P - t * N) / (1.0 + t), 0, positives);
        update.delta_positives = -k;
        update.delta_negatives = k;
      } else {
        int64_t k = ClampCount((t * N - P) / (1.0 + t), 0, negatives);
        update.delta_negatives = -k;
        update.delta_positives = k;
      }
      return update;
    }

    case RemedyTechnique::kMassaging: {
      if (too_positive) {
        int64_t k = ClampCount((P - t * N) / (1.0 + t), 0, positives);
        update.delta_positives = -k;
        update.delta_negatives = k;
        update.flips = k;
      } else {
        int64_t k = ClampCount((t * N - P) / (1.0 + t), 0, negatives);
        update.delta_negatives = -k;
        update.delta_positives = k;
        update.flips = k;
      }
      return update;
    }
  }
  REMEDY_CHECK(false) << "unknown technique";
  return update;
}

StatusOr<Dataset> RemedyDataset(const Dataset& train,
                                const RemedyParams& params,
                                RemedyStats* stats_out) {
  if (train.NumRows() <= 0) {
    return InvalidArgumentError("cannot remedy an empty dataset");
  }
  if (train.schema().NumProtected() == 0) {
    return InvalidArgumentError("remedy needs protected attributes");
  }
  REMEDY_FAULT_POINT("remedy/apply");
  REMEDY_TRACE_SPAN("remedy/dataset");
  const PipelineMetrics& metrics = PipelineMetrics::Get();
  // Run through a local stats block even when the caller passed none, so
  // the pipeline counters see the pass regardless.
  RemedyStats stats;
  StatusOr<Dataset> remedied = [&]() -> StatusOr<Dataset> {
    switch (params.engine) {
      case RemedyEngine::kIncremental:
        metrics.remedy_incremental_passes->Increment();
        return RemedyIncremental(train, params, &stats);
      case RemedyEngine::kRebuild:
        metrics.remedy_rebuild_passes->Increment();
        return RemedyRebuild(train, params, &stats);
    }
    REMEDY_CHECK(false) << "unknown engine";
    return train;
  }();
  if (remedied.ok()) {
    metrics.remedy_regions_planned->Increment(stats.regions_processed +
                                              stats.regions_skipped);
    switch (params.technique) {
      case RemedyTechnique::kOversample:
        metrics.remedy_oversample_rows_added->Increment(stats.instances_added);
        break;
      case RemedyTechnique::kUndersample:
        metrics.remedy_undersample_rows_removed->Increment(
            stats.instances_removed);
        break;
      case RemedyTechnique::kPreferentialSampling:
        metrics.remedy_preferential_rows_added->Increment(
            stats.instances_added);
        metrics.remedy_preferential_rows_removed->Increment(
            stats.instances_removed);
        break;
      case RemedyTechnique::kMassaging:
        metrics.remedy_massaging_labels_flipped->Increment(
            stats.labels_flipped);
        break;
    }
  }
  if (stats_out != nullptr) *stats_out = stats;
  return remedied;
}

StatusOr<std::vector<PlannedAction>> PlanRemedy(const Dataset& train,
                                                const RemedyParams& params) {
  ASSIGN_OR_RETURN(std::vector<BiasedRegion> ibs,
                   IdentifyIbs(train, params.ibs));
  std::vector<PlannedAction> plan;
  for (const BiasedRegion& region : ibs) {
    RegionUpdate update =
        ComputeUpdate(params.technique, region.counts.positives,
                      region.counts.negatives, region.neighbor_ratio);
    plan.push_back({region, update});
  }
  return plan;
}

StatusOr<IterativeRemedyResult> RemedyUntilConverged(
    const Dataset& train, const RemedyParams& params, int max_rounds) {
  if (max_rounds < 1) {
    return InvalidArgumentError("max_rounds must be at least 1, got " +
                                std::to_string(max_rounds));
  }
  IterativeRemedyResult result;
  result.dataset = train;
  RemedyParams round_params = params;
  // The residual identified after each pass doubles as the next round's
  // convergence check, so each round costs one IdentifyIbs, not two.
  ASSIGN_OR_RETURN(std::vector<BiasedRegion> residual,
                   IdentifyIbs(result.dataset, params.ibs));
  for (int round = 0; round < max_rounds; ++round) {
    if (residual.empty()) {
      result.converged = true;
      break;
    }
    RemedyStats stats;
    // Vary the seed per round so repeated sampling decisions differ.
    round_params.seed = params.seed + static_cast<uint64_t>(round);
    ASSIGN_OR_RETURN(Dataset next,
                     RemedyDataset(result.dataset, round_params, &stats));
    ++result.rounds;
    result.total_stats.regions_processed += stats.regions_processed;
    result.total_stats.regions_skipped += stats.regions_skipped;
    result.total_stats.instances_added += stats.instances_added;
    result.total_stats.instances_removed += stats.instances_removed;
    result.total_stats.labels_flipped += stats.labels_flipped;
    result.total_stats.add_budget_exhausted |= stats.add_budget_exhausted;
    result.dataset = std::move(next);
    ASSIGN_OR_RETURN(residual, IdentifyIbs(result.dataset, round_params.ibs));
    result.ibs_sizes.push_back(residual.size());
    if (stats.regions_processed == 0) break;  // nothing actionable remains
  }
  if (!result.ibs_sizes.empty() && result.ibs_sizes.back() == 0) {
    result.converged = true;
  }
  return result;
}

}  // namespace remedy
