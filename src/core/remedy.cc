#include "core/remedy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "common/check.h"
#include "common/rng.h"
#include "core/ranker.h"

namespace remedy {
namespace {

constexpr double kZeroRatioEpsilon = 1e-12;

int64_t ClampCount(double value, int64_t lo, int64_t hi) {
  int64_t rounded = std::llround(value);
  return std::clamp(rounded, lo, hi);
}

}  // namespace

std::string TechniqueName(RemedyTechnique technique) {
  switch (technique) {
    case RemedyTechnique::kOversample:
      return "Oversample";
    case RemedyTechnique::kUndersample:
      return "Undersample";
    case RemedyTechnique::kPreferentialSampling:
      return "PreferentialSampling";
    case RemedyTechnique::kMassaging:
      return "Massaging";
  }
  REMEDY_CHECK(false) << "unknown technique";
  return "";
}

RegionUpdate ComputeUpdate(RemedyTechnique technique, int64_t positives,
                           int64_t negatives, double target_ratio) {
  RegionUpdate update;
  const double P = static_cast<double>(positives);
  const double N = static_cast<double>(negatives);

  // Neighborhood is all-positive: the target is "no negatives".
  if (target_ratio == kAllPositiveRatio) {
    if (negatives == 0) return update;  // already matching
    switch (technique) {
      case RemedyTechnique::kOversample:
        // Adding instances can never empty the negative side.
        update.reachable = false;
        return update;
      case RemedyTechnique::kUndersample:
        update.delta_negatives = -negatives;
        return update;
      case RemedyTechnique::kPreferentialSampling:
        update.delta_negatives = -negatives;
        update.delta_positives = negatives;
        return update;
      case RemedyTechnique::kMassaging:
        update.delta_negatives = -negatives;
        update.delta_positives = negatives;
        update.flips = negatives;
        return update;
    }
  }

  const double t = target_ratio;
  const double current = ImbalanceScore(positives, negatives);
  // A region with no negatives has conceptually infinite imbalance, so it
  // sits on the "too positive" side of any finite target.
  const bool too_positive =
      (current == kAllPositiveRatio) || (current > t);
  if (!too_positive && current == t) return update;  // already matching

  switch (technique) {
    case RemedyTechnique::kOversample:
      if (too_positive) {
        if (t <= kZeroRatioEpsilon) {
          update.reachable = false;  // cannot reach ratio 0 by adding rows
          return update;
        }
        update.delta_negatives =
            ClampCount(P / t - N, 0, std::numeric_limits<int64_t>::max());
      } else {
        update.delta_positives =
            ClampCount(t * N - P, 0, std::numeric_limits<int64_t>::max());
      }
      return update;

    case RemedyTechnique::kUndersample:
      if (too_positive) {
        update.delta_positives = -ClampCount(P - t * N, 0, positives);
      } else {
        REMEDY_DCHECK(t > kZeroRatioEpsilon);  // t > current >= 0
        update.delta_negatives = -ClampCount(N - P / t, 0, negatives);
      }
      return update;

    case RemedyTechnique::kPreferentialSampling: {
      // (P -+ k) / (N +- k) = t  =>  k = |P - t N| / (1 + t).
      // Only the removal side is bounded by the class population; the
      // duplicated borderline instances may repeat.
      if (too_positive) {
        int64_t k = ClampCount((P - t * N) / (1.0 + t), 0, positives);
        update.delta_positives = -k;
        update.delta_negatives = k;
      } else {
        int64_t k = ClampCount((t * N - P) / (1.0 + t), 0, negatives);
        update.delta_negatives = -k;
        update.delta_positives = k;
      }
      return update;
    }

    case RemedyTechnique::kMassaging: {
      if (too_positive) {
        int64_t k = ClampCount((P - t * N) / (1.0 + t), 0, positives);
        update.delta_positives = -k;
        update.delta_negatives = k;
        update.flips = k;
      } else {
        int64_t k = ClampCount((t * N - P) / (1.0 + t), 0, negatives);
        update.delta_negatives = -k;
        update.delta_positives = k;
        update.flips = k;
      }
      return update;
    }
  }
  REMEDY_CHECK(false) << "unknown technique";
  return update;
}

Dataset RemedyDataset(const Dataset& train, const RemedyParams& params,
                      RemedyStats* stats_out) {
  REMEDY_CHECK(train.NumRows() > 0);
  Dataset working = train;
  RemedyStats stats;
  Rng rng(params.seed);

  const bool needs_ranker =
      params.technique == RemedyTechnique::kPreferentialSampling ||
      params.technique == RemedyTechnique::kMassaging;
  // The ranker is trained once on the original data, as in the paper's
  // "train the ranker" step; it scores rows of the evolving working set.
  std::unique_ptr<BorderlineRanker> ranker;
  if (needs_ranker) ranker = std::make_unique<BorderlineRanker>(train);

  Hierarchy hierarchy(working);
  for (uint32_t mask : ScopeMasks(hierarchy, params.ibs.scope)) {
    std::vector<BiasedRegion> biased =
        IdentifyIbsInNode(hierarchy, mask, params.ibs);
    if (biased.empty()) continue;

    auto rows_by_key = hierarchy.counter().CollectRows(working, mask);
    std::vector<int> to_remove;
    std::vector<int> to_flip;
    std::vector<int> duplicates;

    for (const BiasedRegion& region : biased) {
      RegionUpdate update =
          ComputeUpdate(params.technique, region.counts.positives,
                        region.counts.negatives, region.neighbor_ratio);
      if (!update.reachable) {
        ++stats.regions_skipped;
        continue;
      }
      if (update.delta_positives == 0 && update.delta_negatives == 0) {
        continue;  // rounding left nothing to do
      }

      const uint64_t key =
          hierarchy.counter().KeyFor(region.pattern, mask);
      const std::vector<int>& region_rows = rows_by_key.at(key);
      std::vector<int> positive_rows, negative_rows;
      for (int row : region_rows) {
        (working.Label(row) == 1 ? positive_rows : negative_rows)
            .push_back(row);
      }

      // Pulls the concrete rows for one class-side delta.
      auto pick_random = [&](const std::vector<int>& source, int64_t count,
                             bool with_replacement) {
        std::vector<int> picked;
        if (source.empty() || count <= 0) return picked;
        if (with_replacement) {
          picked.reserve(count);
          for (int64_t i = 0; i < count; ++i) {
            picked.push_back(
                source[rng.UniformInt(static_cast<int>(source.size()))]);
          }
        } else {
          std::vector<int> indices = rng.SampleWithoutReplacement(
              static_cast<int>(source.size()),
              static_cast<int>(
                  std::min<int64_t>(count, source.size())));
          for (int index : indices) picked.push_back(source[index]);
        }
        return picked;
      };

      auto pick_borderline = [&](const std::vector<int>& source, int label,
                                 int64_t count, bool allow_repeat) {
        std::vector<int> picked;
        if (source.empty() || count <= 0) return picked;
        std::vector<int> ranked =
            ranker->RankBorderline(working, source, label);
        picked.reserve(count);
        for (int64_t i = 0; i < count; ++i) {
          if (!allow_repeat && i >= static_cast<int64_t>(ranked.size())) {
            break;
          }
          picked.push_back(ranked[i % ranked.size()]);
        }
        return picked;
      };

      bool acted = false;
      switch (params.technique) {
        case RemedyTechnique::kOversample: {
          const std::vector<int>& source =
              update.delta_negatives > 0 ? negative_rows : positive_rows;
          int64_t want =
              std::max(update.delta_negatives, update.delta_positives);
          if (source.empty()) {
            ++stats.regions_skipped;  // nothing to duplicate from
            break;
          }
          if (params.max_added_total >= 0) {
            int64_t budget = params.max_added_total - stats.instances_added -
                             static_cast<int64_t>(duplicates.size());
            if (want > budget) {
              want = std::max<int64_t>(budget, 0);
              stats.add_budget_exhausted = true;
            }
          }
          std::vector<int> picked =
              pick_random(source, want, /*with_replacement=*/true);
          duplicates.insert(duplicates.end(), picked.begin(), picked.end());
          acted = !picked.empty();
          break;
        }
        case RemedyTechnique::kUndersample: {
          int64_t remove_positives = -std::min<int64_t>(
              update.delta_positives, 0);
          int64_t remove_negatives = -std::min<int64_t>(
              update.delta_negatives, 0);
          std::vector<int> picked =
              pick_random(positive_rows, remove_positives, false);
          std::vector<int> picked_neg =
              pick_random(negative_rows, remove_negatives, false);
          picked.insert(picked.end(), picked_neg.begin(), picked_neg.end());
          to_remove.insert(to_remove.end(), picked.begin(), picked.end());
          acted = !picked.empty();
          break;
        }
        case RemedyTechnique::kPreferentialSampling: {
          // Duplication draws from the other class; with no instance to
          // duplicate the exchange cannot move the ratio toward the target.
          const std::vector<int>& duplication_source =
              update.delta_positives < 0 ? negative_rows : positive_rows;
          if (duplication_source.empty()) {
            ++stats.regions_skipped;
            break;
          }
          if (update.delta_positives < 0) {
            // Drop borderline positives, duplicate borderline negatives.
            std::vector<int> removed = pick_borderline(
                positive_rows, 1, -update.delta_positives, false);
            std::vector<int> added = pick_borderline(
                negative_rows, 0, update.delta_negatives, true);
            to_remove.insert(to_remove.end(), removed.begin(), removed.end());
            duplicates.insert(duplicates.end(), added.begin(), added.end());
            acted = !removed.empty() || !added.empty();
          } else {
            std::vector<int> removed = pick_borderline(
                negative_rows, 0, -update.delta_negatives, false);
            std::vector<int> added = pick_borderline(
                positive_rows, 1, update.delta_positives, true);
            to_remove.insert(to_remove.end(), removed.begin(), removed.end());
            duplicates.insert(duplicates.end(), added.begin(), added.end());
            acted = !removed.empty() || !added.empty();
          }
          break;
        }
        case RemedyTechnique::kMassaging: {
          const bool flip_positives = update.delta_positives < 0;
          std::vector<int> flipped = pick_borderline(
              flip_positives ? positive_rows : negative_rows,
              flip_positives ? 1 : 0, update.flips, false);
          to_flip.insert(to_flip.end(), flipped.begin(), flipped.end());
          acted = !flipped.empty();
          break;
        }
      }
      if (acted) ++stats.regions_processed;
    }

    if (to_flip.empty() && duplicates.empty() && to_remove.empty()) continue;

    for (int row : to_flip) working.SetLabel(row, 1 - working.Label(row));
    for (int row : duplicates) working.AppendRowFrom(working, row);
    if (!to_remove.empty()) working = working.Remove(to_remove);

    stats.labels_flipped += static_cast<int64_t>(to_flip.size());
    stats.instances_added += static_cast<int64_t>(duplicates.size());
    stats.instances_removed += static_cast<int64_t>(to_remove.size());
    hierarchy.Invalidate();
  }

  if (stats_out != nullptr) *stats_out = stats;
  return working;
}

std::vector<PlannedAction> PlanRemedy(const Dataset& train,
                                      const RemedyParams& params) {
  std::vector<PlannedAction> plan;
  for (const BiasedRegion& region : IdentifyIbs(train, params.ibs)) {
    RegionUpdate update =
        ComputeUpdate(params.technique, region.counts.positives,
                      region.counts.negatives, region.neighbor_ratio);
    plan.push_back({region, update});
  }
  return plan;
}

IterativeRemedyResult RemedyUntilConverged(const Dataset& train,
                                           const RemedyParams& params,
                                           int max_rounds) {
  REMEDY_CHECK(max_rounds >= 1);
  IterativeRemedyResult result;
  result.dataset = train;
  RemedyParams round_params = params;
  for (int round = 0; round < max_rounds; ++round) {
    // Scoped per-round IBS check against the *current* dataset.
    std::vector<BiasedRegion> residual =
        IdentifyIbs(result.dataset, round_params.ibs);
    if (residual.empty()) {
      result.converged = true;
      break;
    }
    RemedyStats stats;
    // Vary the seed per round so repeated sampling decisions differ.
    round_params.seed = params.seed + static_cast<uint64_t>(round);
    Dataset next = RemedyDataset(result.dataset, round_params, &stats);
    ++result.rounds;
    result.total_stats.regions_processed += stats.regions_processed;
    result.total_stats.regions_skipped += stats.regions_skipped;
    result.total_stats.instances_added += stats.instances_added;
    result.total_stats.instances_removed += stats.instances_removed;
    result.total_stats.labels_flipped += stats.labels_flipped;
    result.total_stats.add_budget_exhausted |= stats.add_budget_exhausted;
    result.dataset = std::move(next);
    result.ibs_sizes.push_back(
        IdentifyIbs(result.dataset, round_params.ibs).size());
    if (stats.regions_processed == 0) break;  // nothing actionable remains
  }
  if (!result.ibs_sizes.empty() && result.ibs_sizes.back() == 0) {
    result.converged = true;
  }
  return result;
}

}  // namespace remedy
