#include "core/counting_backend.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/pipeline_metrics.h"
#include "common/thread_pool.h"
#include "core/counting_kernels.h"

namespace remedy {
namespace {

// Rows keyed per kernel invocation: one block of u32 keys (32 KiB) stays
// L1-resident between the key pass and the tally pass.
constexpr int64_t kKeyBlockRows = 8192;

// Largest key space tallied into one dense array by the single-threaded
// paths (mirrors RegionCounter's dense/sparse split).
constexpr uint64_t kDenseKeyLimit = uint64_t{1} << 21;

// Largest per-shard dense table of the sharded backend: every in-flight
// shard owns one, so the bound is tighter than the single-table limit.
constexpr uint64_t kShardDenseKeyLimit = uint64_t{1} << 19;

// ... and the merged footprint across all shards is capped too, so a
// many-shard store with a wide key space degrades to the sparse path
// instead of allocating shards x table.
constexpr uint64_t kShardedDenseBudgetBytes = uint64_t{1} << 29;  // 512 MiB

std::vector<NodeTable::Entry> EntriesFromTally(
    const std::vector<int64_t>& tally) {
  std::vector<NodeTable::Entry> entries;
  const uint64_t key_space = tally.size() / 2;
  for (uint64_t key = 0; key < key_space; ++key) {
    const int64_t negatives = tally[2 * key];
    const int64_t positives = tally[2 * key + 1];
    if (positives + negatives > 0) {
      entries.emplace_back(key, RegionCounts{positives, negatives});
    }
  }
  return entries;
}

// Scalar mixed-radix key of one store row — the store twin of
// RegionCounter::RowKey (same Horner packing over the same positions).
uint64_t StoreRowKey(const ColumnarShardStore::ShardView& shard,
                     const std::vector<int>& cardinalities, uint32_t mask,
                     int64_t row) {
  uint64_t key = 0;
  for (size_t i = 0; i < cardinalities.size(); ++i) {
    if (mask & (1u << i)) {
      const ColumnarShardStore::ShardView::Column& column = shard.columns[i];
      const uint64_t code = column.wide == nullptr
                                ? column.narrow[row]
                                : column.wide[row];
      key = key * static_cast<uint64_t>(cardinalities[i]) + code;
    }
  }
  return key;
}

std::vector<int> StoreCardinalities(const ColumnarShardStore& store) {
  std::vector<int> cardinalities(store.NumProtected());
  for (int i = 0; i < store.NumProtected(); ++i) {
    cardinalities[i] = store.Cardinality(i);
  }
  return cardinalities;
}

// Row-at-a-time count of a store (the scalar backend's store path and the
// shared fallback for key spaces the u32 kernels cannot pack).
NodeTable ScalarCountStore(const ColumnarShardStore& store,
                           const RegionCounter& counter, uint32_t mask) {
  const std::vector<int> cardinalities = StoreCardinalities(store);
  const uint64_t key_space = counter.KeySpace(mask);
  std::vector<NodeTable::Entry> entries;
  if (key_space <= kDenseKeyLimit) {
    std::vector<int64_t> tally(2 * key_space, 0);
    for (int s = 0; s < store.NumShards(); ++s) {
      const ColumnarShardStore::ShardView shard = store.View(s);
      store.BeginShardPass(s);
      for (int64_t r = 0; r < shard.num_rows; ++r) {
        const uint64_t key = StoreRowKey(shard, cardinalities, mask, r);
        ++tally[2 * key + shard.labels[r]];
      }
      store.EndShardPass(s);
    }
    entries = EntriesFromTally(tally);
  } else {
    std::unordered_map<uint64_t, RegionCounts> counts;
    for (int s = 0; s < store.NumShards(); ++s) {
      const ColumnarShardStore::ShardView shard = store.View(s);
      store.BeginShardPass(s);
      for (int64_t r = 0; r < shard.num_rows; ++r) {
        const uint64_t key = StoreRowKey(shard, cardinalities, mask, r);
        RegionCounts& entry = counts[key];
        if (shard.labels[r] == 1) {
          ++entry.positives;
        } else {
          ++entry.negatives;
        }
      }
      store.EndShardPass(s);
    }
    entries.assign(counts.begin(), counts.end());
  }
  return NodeTable(std::move(entries));
}

// Counts one shard into `tally` (2 * key_space dense array) through the
// vectorized key kernel, reusing the caller's key/lane scratch.
void CountShardDense(const ColumnarShardStore::ShardView& shard,
                     const LeafKeyPlan& plan, std::vector<uint32_t>& keys,
                     std::vector<int64_t>& lanes,
                     std::vector<int64_t>& tally) {
  const bool lane_tally = UseLaneTally(plan.key_space);
  for (int64_t begin = 0; begin < shard.num_rows; begin += kKeyBlockRows) {
    const int64_t count = std::min(kKeyBlockRows, shard.num_rows - begin);
    ComputeShardKeys(shard, plan, begin, count, keys.data());
    if (lane_tally) {
      TallyKeysLanes(keys.data(), shard.labels + begin, count,
                     plan.key_space, lanes.data());
    } else {
      TallyKeysSingle(keys.data(), shard.labels + begin, count,
                      tally.data());
    }
  }
  if (lane_tally) {
    MergeTallyLanes(lanes.data(), plan.key_space, tally.data());
    std::fill(lanes.begin(), lanes.end(), 0);
  }
}

// Sparse twin: keys still come from the vectorized kernel; the tally goes
// through a hash map.
void CountShardSparse(const ColumnarShardStore::ShardView& shard,
                      const LeafKeyPlan& plan, std::vector<uint32_t>& keys,
                      std::unordered_map<uint64_t, RegionCounts>& counts) {
  for (int64_t begin = 0; begin < shard.num_rows; begin += kKeyBlockRows) {
    const int64_t count = std::min(kKeyBlockRows, shard.num_rows - begin);
    ComputeShardKeys(shard, plan, begin, count, keys.data());
    const uint8_t* labels = shard.labels + begin;
    for (int64_t i = 0; i < count; ++i) {
      RegionCounts& entry = counts[keys[i]];
      if (labels[i] == 1) {
        ++entry.positives;
      } else {
        ++entry.negatives;
      }
    }
  }
}

class ScalarCountingBackend : public CountingBackend {
 public:
  CountingBackendKind kind() const override {
    return CountingBackendKind::kScalar;
  }

  NodeTable CountNode(const CountingSource& source,
                      const RegionCounter& counter, uint32_t mask,
                      int /*threads*/) const override {
    if (source.dataset != nullptr) {
      return counter.CountNode(*source.dataset, mask);
    }
    REMEDY_CHECK(source.store != nullptr)
        << "scalar backend needs a Dataset or a ColumnarShardStore";
    return ScalarCountStore(*source.store, counter, mask);
  }
};

class SimdCountingBackend : public CountingBackend {
 public:
  CountingBackendKind kind() const override {
    return CountingBackendKind::kSimd;
  }

  NodeTable CountNode(const CountingSource& source,
                      const RegionCounter& counter, uint32_t mask,
                      int /*threads*/) const override {
    REMEDY_CHECK(source.store != nullptr)
        << "simd backend needs a ColumnarShardStore";
    const ColumnarShardStore& store = *source.store;
    const LeafKeyPlan plan =
        MakeLeafKeyPlan(StoreCardinalities(store), mask);
    if (!plan.FitsU32()) {
      // Keys beyond 32 bits cannot ride the u32 SIMD lanes; such spaces
      // are far past the dense limit anyway, so take the scalar map path.
      return ScalarCountStore(store, counter, mask);
    }
    PipelineMetrics::Get().lattice_shard_rows->Increment(store.NumRows());
    std::vector<uint32_t> keys(kKeyBlockRows);
    std::vector<NodeTable::Entry> entries;
    if (plan.key_space <= kDenseKeyLimit) {
      std::vector<int64_t> tally(2 * plan.key_space, 0);
      std::vector<int64_t> lanes(
          UseLaneTally(plan.key_space) ? kTallyLanes * 2 * plan.key_space : 0,
          0);
      for (int s = 0; s < store.NumShards(); ++s) {
        const ColumnarShardStore::ShardView shard = store.View(s);
        store.BeginShardPass(s);
        CountShardDense(shard, plan, keys, lanes, tally);
        store.EndShardPass(s);
      }
      entries = EntriesFromTally(tally);
    } else {
      std::unordered_map<uint64_t, RegionCounts> counts;
      for (int s = 0; s < store.NumShards(); ++s) {
        const ColumnarShardStore::ShardView shard = store.View(s);
        store.BeginShardPass(s);
        CountShardSparse(shard, plan, keys, counts);
        store.EndShardPass(s);
      }
      entries.assign(counts.begin(), counts.end());
    }
    return NodeTable(std::move(entries));
  }
};

class ShardedCountingBackend : public CountingBackend {
 public:
  CountingBackendKind kind() const override {
    return CountingBackendKind::kSharded;
  }

  NodeTable CountNode(const CountingSource& source,
                      const RegionCounter& counter, uint32_t mask,
                      int threads) const override {
    REMEDY_CHECK(source.store != nullptr)
        << "sharded backend needs a ColumnarShardStore";
    const ColumnarShardStore& store = *source.store;
    const int num_shards = store.NumShards();
    const LeafKeyPlan plan =
        MakeLeafKeyPlan(StoreCardinalities(store), mask);
    if (!plan.FitsU32()) {
      return ScalarCountStore(store, counter, mask);
    }
    const PipelineMetrics& metrics = PipelineMetrics::Get();
    metrics.lattice_shard_rows->Increment(store.NumRows());
    metrics.lattice_shard_tallies->Increment(num_shards);

    const bool dense =
        plan.key_space <= kShardDenseKeyLimit &&
        static_cast<uint64_t>(num_shards) * plan.key_space * 2 *
                sizeof(int64_t) <=
            kShardedDenseBudgetBytes;

    // Each shard is counted independently into its own table (slot writes
    // only — no shared mutable state), then the tables are folded in
    // ascending shard order. Integer sums commute, so the fold order is a
    // convention, not a correctness requirement; fixing it anyway makes
    // the execution canonical and keeps any future non-commutative
    // aggregate honest.
    std::vector<std::vector<int64_t>> shard_tallies;
    std::vector<std::vector<NodeTable::Entry>> shard_entries;
    if (dense) {
      shard_tallies.resize(num_shards);
    } else {
      shard_entries.resize(num_shards);
    }
    auto count_shard = [&](int64_t s) {
      std::vector<uint32_t> keys(kKeyBlockRows);
      const int index = static_cast<int>(s);
      const ColumnarShardStore::ShardView shard = store.View(index);
      store.BeginShardPass(index);
      if (dense) {
        std::vector<int64_t> tally(2 * plan.key_space, 0);
        std::vector<int64_t> lanes(
            UseLaneTally(plan.key_space) ? kTallyLanes * 2 * plan.key_space
                                         : 0,
            0);
        CountShardDense(shard, plan, keys, lanes, tally);
        shard_tallies[s] = std::move(tally);
      } else {
        std::unordered_map<uint64_t, RegionCounts> counts;
        CountShardSparse(shard, plan, keys, counts);
        std::vector<NodeTable::Entry> entries(counts.begin(), counts.end());
        shard_entries[s] = std::move(entries);
      }
      store.EndShardPass(index);
    };

    const int workers = ResolveThreadCount(threads);
    if (workers <= 1 || num_shards <= 1) {
      for (int s = 0; s < num_shards; ++s) count_shard(s);
    } else {
      ThreadPool pool(std::min(workers, num_shards));
      Status counted = pool.ParallelFor(num_shards, count_shard);
      REMEDY_CHECK(counted.ok())
          << "sharded counting failed: " << counted.ToString();
    }

    metrics.lattice_shard_merges->Increment(num_shards);
    std::vector<NodeTable::Entry> entries;
    if (dense) {
      std::vector<int64_t> merged(2 * plan.key_space, 0);
      for (int s = 0; s < num_shards; ++s) {
        const std::vector<int64_t>& tally = shard_tallies[s];
        for (size_t j = 0; j < merged.size(); ++j) merged[j] += tally[j];
      }
      entries = EntriesFromTally(merged);
    } else {
      size_t total = 0;
      for (const auto& shard : shard_entries) total += shard.size();
      entries.reserve(total);
      for (int s = 0; s < num_shards; ++s) {
        entries.insert(entries.end(), shard_entries[s].begin(),
                       shard_entries[s].end());
      }
    }
    // The sparse concatenation is the one unsorted input large enough for
    // the parallel radix sort; the dense fold is already ascending, so the
    // sort-thread hint is a no-op there.
    return NodeTable(std::move(entries), workers);
  }
};

}  // namespace

const char* CountingBackendName(CountingBackendKind kind) {
  switch (kind) {
    case CountingBackendKind::kScalar:
      return "scalar";
    case CountingBackendKind::kSimd:
      return "simd";
    case CountingBackendKind::kSharded:
      return "sharded";
  }
  REMEDY_CHECK(false) << "unreachable backend kind";
  return "";
}

StatusOr<CountingBackendKind> ParseCountingBackend(const std::string& name) {
  if (name == "scalar") return CountingBackendKind::kScalar;
  if (name == "simd") return CountingBackendKind::kSimd;
  if (name == "sharded") return CountingBackendKind::kSharded;
  return InvalidArgumentError("unknown counting backend '" + name +
                              "' (want scalar|simd|sharded)");
}

std::unique_ptr<CountingBackend> CountingBackend::Create(
    CountingBackendKind kind) {
  switch (kind) {
    case CountingBackendKind::kScalar:
      return std::make_unique<ScalarCountingBackend>();
    case CountingBackendKind::kSimd:
      return std::make_unique<SimdCountingBackend>();
    case CountingBackendKind::kSharded:
      return std::make_unique<ShardedCountingBackend>();
  }
  REMEDY_CHECK(false) << "unreachable backend kind";
  return nullptr;
}

}  // namespace remedy
