#include "core/pattern.h"

#include <cmath>

#include "common/check.h"

namespace remedy {

int Pattern::NumDeterministic() const {
  int count = 0;
  for (int v : values_) count += (v != kWildcard);
  return count;
}

uint32_t Pattern::DeterministicMask() const {
  REMEDY_DCHECK(Arity() <= 32);
  uint32_t mask = 0;
  for (int i = 0; i < Arity(); ++i) {
    if (values_[i] != kWildcard) mask |= (1u << i);
  }
  return mask;
}

bool Pattern::Matches(const Dataset& data, int row) const {
  const std::vector<int>& protected_cols = data.schema().protected_indices();
  REMEDY_DCHECK(static_cast<int>(protected_cols.size()) == Arity());
  for (int i = 0; i < Arity(); ++i) {
    if (values_[i] != kWildcard &&
        data.Value(row, protected_cols[i]) != values_[i]) {
      return false;
    }
  }
  return true;
}

bool Pattern::Dominates(const Pattern& region) const {
  REMEDY_CHECK(Arity() == region.Arity());
  for (int i = 0; i < Arity(); ++i) {
    if (values_[i] != kWildcard && values_[i] != region.values_[i]) {
      return false;
    }
  }
  return true;
}

double Pattern::Distance(const Pattern& other,
                         const DataSchema& schema) const {
  REMEDY_CHECK(SameNode(other))
      << "distance is only defined within one hierarchy node";
  const std::vector<int>& protected_cols = schema.protected_indices();
  double squared = 0.0;
  for (int i = 0; i < Arity(); ++i) {
    if (values_[i] == kWildcard) continue;
    double d = schema.attribute(protected_cols[i])
                   .Distance(values_[i], other.values_[i]);
    squared += d * d;
  }
  return std::sqrt(squared);
}

std::string Pattern::ToString(const DataSchema& schema) const {
  const std::vector<int>& protected_cols = schema.protected_indices();
  std::string out = "(";
  bool first = true;
  for (int i = 0; i < Arity(); ++i) {
    if (values_[i] == kWildcard) continue;
    if (!first) out += ", ";
    first = false;
    const AttributeSchema& attr = schema.attribute(protected_cols[i]);
    out += attr.name() + "=" + attr.ValueName(values_[i]);
  }
  if (first) out += "*";  // level-0: the entire dataset
  out += ")";
  return out;
}

}  // namespace remedy
