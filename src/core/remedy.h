#ifndef REMEDY_CORE_REMEDY_H_
#define REMEDY_CORE_REMEDY_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/ibs_identify.h"
#include "data/dataset.h"

namespace remedy {

// The four pre-processing techniques of Sec. IV-A.
enum class RemedyTechnique {
  kOversample,            // duplicate minority-class instances (DP)
  kUndersample,           // drop majority-class instances (US)
  kPreferentialSampling,  // duplicate + drop borderline instances (PS)
  kMassaging,             // relabel borderline majority instances
};

std::string TechniqueName(RemedyTechnique technique);

// Counting strategy of the remedy sweep. Both engines run the same planning
// code with the same per-region RNG streams, so for any input they produce
// a row-multiset-identical remedied dataset and identical RemedyStats; they
// differ only in how the region counts and the working set are maintained.
enum class RemedyEngine {
  // Delta-maintained counts: the lattice is built once (EagerBuild), every
  // node-visit's label flips / duplications / removals are applied to the
  // affected NodeTable entries via Hierarchy::ApplyDeltas, removals are
  // tombstoned and compacted once at the end, ranker scores are cached per
  // row, and the read-only per-region planning of a node runs on a thread
  // pool with a deterministic merge order.
  kIncremental,
  // Rebuild-from-scratch reference: invalidate the lattice and copy the
  // dataset after every node that changed, re-rank borderline rows per
  // region. The oracle the incremental engine is equivalence-tested against.
  kRebuild,
};

struct RemedyParams {
  IbsParams ibs;
  RemedyTechnique technique = RemedyTechnique::kPreferentialSampling;
  uint64_t seed = 23;
  // Safety valve for oversampling: stop adding rows past this budget (the
  // paper reports oversampling exhausting memory at scale; we reproduce the
  // growth but keep the process alive). Negative disables the cap.
  int64_t max_added_total = 2'000'000;
  RemedyEngine engine = RemedyEngine::kIncremental;
  // Worker threads for the incremental engine's per-region planning (and
  // its one-off EagerBuild); 0 means ThreadPool::DefaultThreads(). The
  // merge order is fixed, so the output is identical at any thread count.
  int planning_threads = 0;
};

struct RemedyStats {
  int regions_processed = 0;  // biased regions acted on
  int regions_skipped = 0;    // unreachable targets (see remedy.cc)
  int64_t instances_added = 0;
  int64_t instances_removed = 0;
  int64_t labels_flipped = 0;
  bool add_budget_exhausted = false;
};

// Algorithm 2 (Dataset Remedy): traverses the hierarchy bottom-up,
// re-identifies the biased regions of each node against the *current*
// dataset (updates to one region shift the scores of regions that dominate
// or are dominated by it), and adjusts each biased region's class
// distribution to its neighboring region's imbalance score via Eq. (1).
//
// Returns the remedied copy of `train`; `train` itself is untouched. The
// test set must never be passed here (the paper applies no remedy to it).
// Fails with kInvalidArgument on an empty dataset or one without protected
// attributes; pool failures inside the incremental engine surface as the
// pool's Status.
StatusOr<Dataset> RemedyDataset(const Dataset& train,
                                const RemedyParams& params,
                                RemedyStats* stats = nullptr);

// Update counts of Def. 6 for one region, exposed for testing and for the
// per-region reporting in the examples: positive delta = instances added
// (negative = removed / relabeled away), by class.
struct RegionUpdate {
  int64_t delta_positives = 0;
  int64_t delta_negatives = 0;
  int64_t flips = 0;  // massaging only
  bool reachable = true;
};

// Solves Eq. (1) for the given technique. `positives`/`negatives` are the
// region's current counts, `target_ratio` is ratio_rn (kAllPositiveRatio for
// an all-positive neighborhood).
RegionUpdate ComputeUpdate(RemedyTechnique technique, int64_t positives,
                           int64_t negatives, double target_ratio);

// The paper notes (Sec. VI, Limitations) that one remedy pass does not
// guarantee |ratio_r - ratio_rn| <= tau_c everywhere: adjusting one region
// shifts the scores of regions that dominate or are dominated by it.
// RemedyUntilConverged repeats Algorithm 2 until the IBS is empty or
// `max_rounds` passes ran, recording the residual IBS size after each pass.
struct IterativeRemedyResult {
  Dataset dataset;
  int rounds = 0;
  bool converged = false;          // IBS empty at the end
  std::vector<size_t> ibs_sizes;   // residual |IBS| after each pass
  RemedyStats total_stats;         // accumulated over all passes
};

// Fails with kInvalidArgument when `max_rounds` < 1 or the dataset is not
// remediable (see RemedyDataset).
StatusOr<IterativeRemedyResult> RemedyUntilConverged(
    const Dataset& train, const RemedyParams& params, int max_rounds = 5);

// Dry run of the remedy's *first* lattice pass: for every currently biased
// region, the update Algorithm 2 would apply (Def. 6), without touching the
// dataset. Because later node updates shift earlier scores, the plan is a
// preview of intent, not a transcript of the full run — use it to review or
// gate a remedy before committing to it (see the remedy_cli `plan` output).
struct PlannedAction {
  BiasedRegion region;
  RegionUpdate update;
};

StatusOr<std::vector<PlannedAction>> PlanRemedy(const Dataset& train,
                                                const RemedyParams& params);

}  // namespace remedy

#endif  // REMEDY_CORE_REMEDY_H_
