#include "mining/region_miner.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"
#include "core/hierarchy.h"
#include "core/imbalance.h"
#include "mining/fpgrowth.h"

namespace remedy {
namespace {

// Item encoding: one id block per protected position.
std::vector<int> ItemOffsets(const DataSchema& schema) {
  std::vector<int> offsets;
  offsets.reserve(schema.NumProtected());
  int next = 0;
  for (int column : schema.protected_indices()) {
    offsets.push_back(next);
    next += schema.attribute(column).Cardinality();
  }
  return offsets;
}

Pattern ItemsetToPattern(const std::vector<int>& items,
                         const std::vector<int>& offsets, int arity) {
  Pattern pattern(arity);
  for (int item : items) {
    // The owning position is the last offset <= item.
    int position = static_cast<int>(
        std::upper_bound(offsets.begin(), offsets.end(), item) -
        offsets.begin() - 1);
    REMEDY_DCHECK(position >= 0);
    REMEDY_DCHECK(!pattern.IsDeterministic(position));
    pattern.SetValue(position, item - offsets[position]);
  }
  return pattern;
}

std::vector<std::vector<int>> BuildTransactions(const Dataset& data) {
  const DataSchema& schema = data.schema();
  std::vector<int> offsets = ItemOffsets(schema);
  std::vector<std::vector<int>> transactions(data.NumRows());
  for (int r = 0; r < data.NumRows(); ++r) {
    std::vector<int>& transaction = transactions[r];
    transaction.reserve(schema.NumProtected());
    for (int i = 0; i < schema.NumProtected(); ++i) {
      transaction.push_back(offsets[i] +
                            data.Value(r, schema.protected_indices()[i]));
    }
  }
  return transactions;
}

}  // namespace

std::vector<MinedRegion> MineFrequentRegions(const Dataset& data,
                                             int64_t min_size) {
  REMEDY_CHECK(data.schema().NumProtected() > 0);
  const DataSchema& schema = data.schema();
  std::vector<int> offsets = ItemOffsets(schema);

  FpGrowthMiner miner(min_size);
  std::vector<FrequentItemset> itemsets =
      miner.Mine(BuildTransactions(data));

  std::vector<MinedRegion> regions;
  regions.reserve(itemsets.size());
  for (const FrequentItemset& itemset : itemsets) {
    regions.push_back({ItemsetToPattern(itemset.items, offsets,
                                        schema.NumProtected()),
                       itemset.support});
  }
  // Lattice order: node mask (bottom-up handled by callers), key ascending.
  RegionCounter counter(schema);
  std::sort(regions.begin(), regions.end(),
            [&counter](const MinedRegion& a, const MinedRegion& b) {
              uint32_t mask_a = a.pattern.DeterministicMask();
              uint32_t mask_b = b.pattern.DeterministicMask();
              if (mask_a != mask_b) return mask_a < mask_b;
              return counter.KeyFor(a.pattern, mask_a) <
                     counter.KeyFor(b.pattern, mask_b);
            });
  return regions;
}

std::vector<BiasedRegion> IdentifyIbsWithMiner(const Dataset& data,
                                               const IbsParams& params) {
  // Strictly-greater size filter, as in Algorithm 1.
  std::vector<MinedRegion> candidates =
      MineFrequentRegions(data, params.min_region_size + 1);

  // Group candidates by hierarchy node.
  std::unordered_map<uint32_t, std::vector<const MinedRegion*>> by_mask;
  for (const MinedRegion& region : candidates) {
    by_mask[region.pattern.DeterministicMask()].push_back(&region);
  }

  Hierarchy hierarchy(data);
  NeighborhoodCalculator neighborhood(hierarchy, params.distance_threshold);
  const RegionCounter& counter = hierarchy.counter();

  std::vector<BiasedRegion> ibs;
  for (uint32_t mask : ScopeMasks(hierarchy, params.scope)) {
    auto it = by_mask.find(mask);
    if (it == by_mask.end()) continue;
    const bool use_optimized =
        params.algorithm == IbsAlgorithm::kOptimized &&
        neighborhood.SupportsOptimized(mask);
    // Candidates arrive key-sorted from MineFrequentRegions.
    const auto& node = hierarchy.NodeCounts(mask);
    for (const MinedRegion* candidate : it->second) {
      const RegionCounts& counts =
          node.at(counter.KeyFor(candidate->pattern, mask));
      REMEDY_DCHECK(counts.Total() == candidate->size);
      RegionCounts neighbor_counts =
          use_optimized
              ? neighborhood.OptimizedNeighborCounts(candidate->pattern,
                                                     counts)
              : neighborhood.NaiveNeighborCounts(candidate->pattern);
      double ratio = ImbalanceScore(counts);
      double neighbor_ratio = ImbalanceScore(neighbor_counts);
      if (std::abs(ratio - neighbor_ratio) > params.imbalance_threshold) {
        ibs.push_back({candidate->pattern, counts, neighbor_counts, ratio,
                       neighbor_ratio});
      }
    }
  }
  return ibs;
}

}  // namespace remedy
