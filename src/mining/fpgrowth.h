#ifndef REMEDY_MINING_FPGROWTH_H_
#define REMEDY_MINING_FPGROWTH_H_

#include <cstdint>
#include <vector>

namespace remedy {

// FP-growth frequent-itemset miner (Han, Pei & Yin [14]).
//
// The paper grounds Theorem 1 in the correspondence between IBS
// identification and frequent pattern mining: candidate regions are exactly
// the patterns with more than k supporting instances. This miner provides
// the classic prefix-tree algorithm as an alternative candidate enumerator
// to the full lattice sweep (see mining/region_miner.h) — asymptotically it
// skips the empty parts of the exponential region space that the per-node
// group-by must still visit mask by mask.

struct FrequentItemset {
  std::vector<int> items;  // sorted ascending
  int64_t support = 0;
};

class FpGrowthMiner {
 public:
  // Itemsets with support >= `min_support` are frequent. min_support >= 1.
  explicit FpGrowthMiner(int64_t min_support);

  // Mines all frequent itemsets (excluding the empty set) from the
  // transactions. Item ids must be non-negative. Items may repeat within a
  // transaction (duplicates are ignored). The result is deterministic:
  // itemsets are sorted lexicographically.
  std::vector<FrequentItemset> Mine(
      const std::vector<std::vector<int>>& transactions) const;

 private:
  int64_t min_support_;
};

}  // namespace remedy

#endif  // REMEDY_MINING_FPGROWTH_H_
