#include "mining/fpgrowth.h"

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_map>

#include "common/check.h"

namespace remedy {
namespace {

// One FP-tree node. Children are keyed by item id; node links chain nodes
// holding the same item for the header table.
struct FpNode {
  int item = -1;
  int64_t count = 0;
  FpNode* parent = nullptr;
  std::map<int, std::unique_ptr<FpNode>> children;
  FpNode* next_same_item = nullptr;
};

struct HeaderEntry {
  int64_t total = 0;
  FpNode* head = nullptr;  // node-link chain
};

// FP-tree with its header table. Nodes are owned by the root's child maps.
struct FpTree {
  FpNode root;
  // Ordered map => deterministic iteration (ascending item id).
  std::map<int, HeaderEntry> header;

  // Inserts an ordered item list with multiplicity `count`.
  void Insert(const std::vector<int>& items, int64_t count) {
    FpNode* node = &root;
    for (int item : items) {
      auto it = node->children.find(item);
      if (it == node->children.end()) {
        auto child = std::make_unique<FpNode>();
        child->item = item;
        child->parent = node;
        HeaderEntry& entry = header[item];
        child->next_same_item = entry.head;
        entry.head = child.get();
        it = node->children.emplace(item, std::move(child)).first;
      }
      it->second->count += count;
      header[item].total += count;
      node = it->second.get();
    }
  }

  bool SinglePath() const {
    const FpNode* node = &root;
    while (!node->children.empty()) {
      if (node->children.size() > 1) return false;
      node = node->children.begin()->second.get();
    }
    return true;
  }
};

// Frequency-descending (ties: ascending id) global item order; transactions
// are inserted in this order so common prefixes share tree paths.
std::vector<int> OrderItems(
    const std::unordered_map<int, int64_t>& frequency, int64_t min_support) {
  std::vector<std::pair<int64_t, int>> ranked;
  for (const auto& [item, count] : frequency) {
    if (count >= min_support) ranked.emplace_back(count, item);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<int> order;
  order.reserve(ranked.size());
  for (const auto& [count, item] : ranked) order.push_back(item);
  return order;
}

// Recursive FP-growth over `tree`, emitting itemsets suffixed with `suffix`.
void MineTree(const FpTree& tree, int64_t min_support,
              std::vector<int>& suffix,
              std::vector<FrequentItemset>* results) {
  // Enumerate each frequent item in the tree as an extension of the suffix.
  for (const auto& [item, entry] : tree.header) {
    if (entry.total < min_support) continue;
    suffix.push_back(item);
    {
      FrequentItemset itemset;
      itemset.items = suffix;
      std::sort(itemset.items.begin(), itemset.items.end());
      itemset.support = entry.total;
      results->push_back(std::move(itemset));
    }

    // Conditional pattern base: the prefix paths of every node holding
    // `item`, weighted by that node's count.
    std::unordered_map<int, int64_t> conditional_frequency;
    std::vector<std::pair<std::vector<int>, int64_t>> paths;
    for (FpNode* node = entry.head; node != nullptr;
         node = node->next_same_item) {
      std::vector<int> path;
      for (FpNode* up = node->parent; up != nullptr && up->item >= 0;
           up = up->parent) {
        path.push_back(up->item);
      }
      std::reverse(path.begin(), path.end());
      if (!path.empty()) {
        for (int path_item : path) {
          conditional_frequency[path_item] += node->count;
        }
        paths.emplace_back(std::move(path), node->count);
      }
    }

    // Build and mine the conditional tree.
    std::vector<int> order = OrderItems(conditional_frequency, min_support);
    if (!order.empty()) {
      std::unordered_map<int, int> rank;
      for (size_t i = 0; i < order.size(); ++i) {
        rank[order[i]] = static_cast<int>(i);
      }
      FpTree conditional;
      for (const auto& [path, count] : paths) {
        std::vector<int> filtered;
        for (int path_item : path) {
          if (rank.count(path_item)) filtered.push_back(path_item);
        }
        std::sort(filtered.begin(), filtered.end(),
                  [&rank](int a, int b) { return rank[a] < rank[b]; });
        if (!filtered.empty()) conditional.Insert(filtered, count);
      }
      MineTree(conditional, min_support, suffix, results);
    }
    suffix.pop_back();
  }
}

}  // namespace

FpGrowthMiner::FpGrowthMiner(int64_t min_support)
    : min_support_(min_support) {
  REMEDY_CHECK(min_support_ >= 1);
}

std::vector<FrequentItemset> FpGrowthMiner::Mine(
    const std::vector<std::vector<int>>& transactions) const {
  // First pass: global item frequencies.
  std::unordered_map<int, int64_t> frequency;
  for (const std::vector<int>& transaction : transactions) {
    // Count each distinct item once per transaction.
    std::vector<int> distinct = transaction;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    for (int item : distinct) {
      REMEDY_CHECK(item >= 0) << "item ids must be non-negative";
      ++frequency[item];
    }
  }

  std::vector<int> order = OrderItems(frequency, min_support_);
  std::unordered_map<int, int> rank;
  for (size_t i = 0; i < order.size(); ++i) {
    rank[order[i]] = static_cast<int>(i);
  }

  // Second pass: build the FP-tree from frequency-ordered transactions.
  FpTree tree;
  for (const std::vector<int>& transaction : transactions) {
    std::vector<int> filtered;
    for (int item : transaction) {
      if (rank.count(item)) filtered.push_back(item);
    }
    std::sort(filtered.begin(), filtered.end());
    filtered.erase(std::unique(filtered.begin(), filtered.end()),
                   filtered.end());
    std::sort(filtered.begin(), filtered.end(),
              [&rank](int a, int b) { return rank[a] < rank[b]; });
    if (!filtered.empty()) tree.Insert(filtered, 1);
  }

  std::vector<FrequentItemset> results;
  std::vector<int> suffix;
  MineTree(tree, min_support_, suffix, &results);
  std::sort(results.begin(), results.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              return a.items < b.items;
            });
  return results;
}

}  // namespace remedy
