#ifndef REMEDY_MINING_REGION_MINER_H_
#define REMEDY_MINING_REGION_MINER_H_

#include <cstdint>
#include <vector>

#include "core/ibs_identify.h"
#include "core/pattern.h"
#include "data/dataset.h"

namespace remedy {

// Bridges FP-growth to the region lattice: every dataset row becomes a
// transaction with one (attribute, value) item per protected attribute, so
// the frequent itemsets are exactly the regions with at least `min_size`
// instances. Two different attribute values never co-occur in a
// transaction, so no invalid pattern can surface.

struct MinedRegion {
  Pattern pattern;
  int64_t size = 0;
};

// All regions of the protected-attribute space with size >= `min_size`,
// mined with FP-growth. Sorted by (node mask, key) like the lattice sweep.
std::vector<MinedRegion> MineFrequentRegions(const Dataset& data,
                                             int64_t min_size);

// IBS identification using FP-growth for candidate enumeration and the
// optimized dominating-region formula for the imbalance comparison.
// Produces exactly the regions IdentifyIbs finds (property-tested), but
// only materializes node counts for lattice levels that contain frequent
// regions.
std::vector<BiasedRegion> IdentifyIbsWithMiner(const Dataset& data,
                                               const IbsParams& params);

}  // namespace remedy

#endif  // REMEDY_MINING_REGION_MINER_H_
