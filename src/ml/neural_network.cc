#include "ml/neural_network.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace remedy {
namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

NeuralNetwork::NeuralNetwork(NeuralNetworkParams params) : params_(params) {
  REMEDY_CHECK(params_.hidden_units > 0);
  REMEDY_CHECK(params_.epochs > 0);
  REMEDY_CHECK(params_.batch_size > 0);
}

// Leaky-ReLU slope: keeps a gradient path open so units cannot die
// permanently (plain ReLU collapsed to constant predictions on the
// weak-signal fairness datasets).
constexpr double kLeak = 0.01;

double NeuralNetwork::Forward(const int* active, int num_columns,
                              std::vector<double>* hidden) const {
  const int h_units = params_.hidden_units;
  hidden->assign(h_units, 0.0);
  for (int h = 0; h < h_units; ++h) {
    const double* row = hidden_weights_.data() +
                        static_cast<size_t>(h) * input_width_;
    double z = hidden_bias_[h];
    for (int c = 0; c < num_columns; ++c) z += row[active[c]];
    (*hidden)[h] = z > 0.0 ? z : kLeak * z;
  }
  double z = output_bias_;
  for (int h = 0; h < h_units; ++h) z += output_weights_[h] * (*hidden)[h];
  return Sigmoid(z);
}

void NeuralNetwork::Fit(const Dataset& train) {
  REMEDY_CHECK(train.NumRows() > 0);
  encoder_ = std::make_unique<OneHotEncoder>(train.schema());
  input_width_ = encoder_->Width();
  const int n = train.NumRows();
  const int num_columns = train.NumColumns();
  const int h_units = params_.hidden_units;

  Rng rng(params_.seed);
  auto glorot = [&](int fan_in) {
    return rng.Normal(0.0, std::sqrt(1.0 / std::max(1, fan_in)));
  };
  hidden_weights_.resize(static_cast<size_t>(h_units) * input_width_);
  for (double& w : hidden_weights_) w = glorot(num_columns);
  hidden_bias_.assign(h_units, 0.0);
  output_weights_.resize(h_units);
  for (double& w : output_weights_) w = glorot(h_units);
  output_bias_ = 0.0;

  // Sparse row representation: the active one-hot index per attribute.
  std::vector<int> active(static_cast<size_t>(n) * num_columns);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < num_columns; ++c) {
      active[static_cast<size_t>(r) * num_columns + c] =
          encoder_->Offset(c) + train.Value(r, c);
    }
  }

  double mean_weight = train.TotalWeight() / n;
  REMEDY_CHECK(mean_weight > 0.0) << "all training weights are zero";

  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> hidden(h_units);
  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (int start = 0; start < n; start += params_.batch_size) {
      int end = std::min(n, start + params_.batch_size);
      // Per-example SGD within the shuffled batch window keeps the update
      // rule simple while matching mini-batch statistics closely enough.
      for (int i = start; i < end; ++i) {
        int r = order[i];
        const int* x = active.data() + static_cast<size_t>(r) * num_columns;
        double p = Forward(x, num_columns, &hidden);
        double error = (p - train.Label(r)) *
                       (train.Weight(r) / mean_weight);
        double lr = params_.learning_rate;
        // Hidden-layer deltas must use the pre-update output weights.
        for (int h = 0; h < h_units; ++h) {
          double gate = hidden[h] > 0.0 ? 1.0 : kLeak;
          double delta = error * output_weights_[h] * gate;
          double* row = hidden_weights_.data() +
                        static_cast<size_t>(h) * input_width_;
          for (int c = 0; c < num_columns; ++c) {
            row[x[c]] -= lr * (delta + params_.l2 * row[x[c]]);
          }
          hidden_bias_[h] -= lr * delta;
        }
        // Output layer.
        for (int h = 0; h < h_units; ++h) {
          double gradient = error * hidden[h] + params_.l2 *
                                                    output_weights_[h];
          output_weights_[h] -= lr * gradient;
        }
        output_bias_ -= lr * error;
      }
    }
  }
}

double NeuralNetwork::PredictProba(const Dataset& data, int row) const {
  REMEDY_CHECK(encoder_ != nullptr)
      << "NeuralNetwork::Fit has not been called";
  const int num_columns = data.NumColumns();
  std::vector<int> active(num_columns);
  for (int c = 0; c < num_columns; ++c) {
    active[c] = encoder_->Offset(c) + data.Value(row, c);
  }
  std::vector<double> hidden;
  return Forward(active.data(), num_columns, &hidden);
}

}  // namespace remedy
