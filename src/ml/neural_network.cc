#include "ml/neural_network.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/pipeline_metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"

namespace remedy {
namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

// Rows per gradient sub-block inside one batch. Fixed (never derived from
// the thread count) so the sub-block partial gradients — and the order they
// are applied in — are the same no matter how many workers claim them.
constexpr int kBatchBlockRows = 64;

}  // namespace

NeuralNetwork::NeuralNetwork(NeuralNetworkParams params) : params_(params) {
  REMEDY_CHECK(params_.hidden_units > 0);
  REMEDY_CHECK(params_.epochs > 0);
  REMEDY_CHECK(params_.batch_size > 0);
}

// Leaky-ReLU slope: keeps a gradient path open so units cannot die
// permanently (plain ReLU collapsed to constant predictions on the
// weak-signal fairness datasets).
constexpr double kLeak = 0.01;

double NeuralNetwork::Forward(const int* active, int num_columns,
                              std::vector<double>* hidden) const {
  const int h_units = params_.hidden_units;
  hidden->assign(h_units, 0.0);
  for (int h = 0; h < h_units; ++h) {
    const double* row = hidden_weights_.data() +
                        static_cast<size_t>(h) * input_width_;
    double z = hidden_bias_[h];
    for (int c = 0; c < num_columns; ++c) z += row[active[c]];
    (*hidden)[h] = z > 0.0 ? z : kLeak * z;
  }
  double z = output_bias_;
  for (int h = 0; h < h_units; ++h) z += output_weights_[h] * (*hidden)[h];
  return Sigmoid(z);
}

void NeuralNetwork::Fit(const Dataset& train) {
  FitEncoded(EncodedMatrix(train));
}

void NeuralNetwork::FitEncoded(const EncodedMatrix& train) {
  REMEDY_TRACE_SPAN("ml/fit");
  WallTimer timer;
  const Dataset& data = train.data();
  REMEDY_CHECK(data.NumRows() > 0);
  encoder_ = std::make_unique<OneHotEncoder>(train.encoder());
  input_width_ = train.Width();
  const int n = data.NumRows();
  const int num_columns = data.NumColumns();
  const int h_units = params_.hidden_units;

  Rng rng(params_.seed);
  auto glorot = [&](int fan_in) {
    return rng.Normal(0.0, std::sqrt(1.0 / std::max(1, fan_in)));
  };
  hidden_weights_.resize(static_cast<size_t>(h_units) * input_width_);
  for (double& w : hidden_weights_) w = glorot(num_columns);
  hidden_bias_.assign(h_units, 0.0);
  output_weights_.resize(h_units);
  for (double& w : output_weights_) w = glorot(h_units);
  output_bias_ = 0.0;

  double mean_weight = data.TotalWeight() / n;
  REMEDY_CHECK(mean_weight > 0.0) << "all training weights are zero";

  const int blocks_per_batch =
      (std::min(params_.batch_size, n) + kBatchBlockRows - 1) /
      kBatchBlockRows;
  const int threads =
      std::min(ResolveThreadCount(params_.threads), blocks_per_batch);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  // One gradient slot per sub-block: the hidden weight matrix, then hidden
  // biases, then output weights, then the output bias.
  const size_t hw_size = static_cast<size_t>(h_units) * input_width_;
  const size_t stride = hw_size + 2 * static_cast<size_t>(h_units) + 1;
  std::vector<double> partial(static_cast<size_t>(blocks_per_batch) * stride);

  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  const double lr = params_.learning_rate;
  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (int start = 0; start < n; start += params_.batch_size) {
      const int end = std::min(n, start + params_.batch_size);
      const int num_blocks =
          (end - start + kBatchBlockRows - 1) / kBatchBlockRows;
      // Phase 1: every sub-block accumulates its gradient against the
      // batch-start weights (read-only here), into its own slot.
      const auto block_gradient = [&](int64_t b) {
        double* g = partial.data() + static_cast<size_t>(b) * stride;
        std::fill(g, g + stride, 0.0);
        double* ghw = g;
        double* ghb = g + hw_size;
        double* gow = ghb + h_units;
        double* gob = gow + h_units;
        std::vector<double> hidden(h_units);
        const int block_begin = start + static_cast<int>(b) * kBatchBlockRows;
        const int block_end = std::min(end, block_begin + kBatchBlockRows);
        for (int i = block_begin; i < block_end; ++i) {
          const int r = order[i];
          const int* x = train.ActiveRow(r);
          const double p = Forward(x, num_columns, &hidden);
          const double error =
              (p - data.Label(r)) * (data.Weight(r) / mean_weight);
          for (int h = 0; h < h_units; ++h) {
            const double gate = hidden[h] > 0.0 ? 1.0 : kLeak;
            const double delta = error * output_weights_[h] * gate;
            const double* row = hidden_weights_.data() +
                                static_cast<size_t>(h) * input_width_;
            double* grow = ghw + static_cast<size_t>(h) * input_width_;
            for (int c = 0; c < num_columns; ++c) {
              grow[x[c]] += delta + params_.l2 * row[x[c]];
            }
            ghb[h] += delta;
          }
          for (int h = 0; h < h_units; ++h) {
            gow[h] += error * hidden[h] + params_.l2 * output_weights_[h];
          }
          *gob += error;
        }
      };
      if (pool != nullptr && num_blocks > 1) {
        Status status = pool->ParallelFor(num_blocks, block_gradient);
        REMEDY_CHECK(status.ok()) << status.message();
      } else {
        for (int b = 0; b < num_blocks; ++b) block_gradient(b);
      }
      // Phase 2: apply the sub-block gradients in ascending order — the
      // fixed sequence that keeps the weights independent of scheduling.
      for (int b = 0; b < num_blocks; ++b) {
        const double* g = partial.data() + static_cast<size_t>(b) * stride;
        const double* ghw = g;
        const double* ghb = g + hw_size;
        const double* gow = ghb + h_units;
        const double* gob = gow + h_units;
        for (size_t j = 0; j < hw_size; ++j) hidden_weights_[j] -= lr * ghw[j];
        for (int h = 0; h < h_units; ++h) hidden_bias_[h] -= lr * ghb[h];
        for (int h = 0; h < h_units; ++h) output_weights_[h] -= lr * gow[h];
        output_bias_ -= lr * *gob;
      }
    }
  }
  PipelineMetrics::Get().ml_epochs->Increment(params_.epochs);
  PipelineMetrics::Get().ml_fits->Increment();
  PipelineMetrics::Get().ml_fit_ns->Observe(timer.Nanos());
}

double NeuralNetwork::PredictProba(const Dataset& data, int row) const {
  REMEDY_CHECK(encoder_ != nullptr)
      << "NeuralNetwork::Fit has not been called";
  const int num_columns = data.NumColumns();
  std::vector<int> active(num_columns);
  for (int c = 0; c < num_columns; ++c) {
    active[c] = encoder_->Offset(c) + data.Value(row, c);
  }
  std::vector<double> hidden;
  return Forward(active.data(), num_columns, &hidden);
}

std::vector<double> NeuralNetwork::PredictProbaAllEncoded(
    const EncodedMatrix& data) const {
  REMEDY_CHECK(encoder_ != nullptr)
      << "NeuralNetwork::Fit has not been called";
  const int num_columns = data.NumColumns();
  std::vector<double> probabilities(data.NumRows());
  std::vector<double> hidden;
  for (int r = 0; r < data.NumRows(); ++r) {
    probabilities[r] = Forward(data.ActiveRow(r), num_columns, &hidden);
  }
  return probabilities;
}

}  // namespace remedy
