#ifndef REMEDY_ML_DECISION_TREE_H_
#define REMEDY_ML_DECISION_TREE_H_

#include <vector>

#include "common/rng.h"
#include "ml/classifier.h"

namespace remedy {

struct DecisionTreeParams {
  int max_depth = 12;
  // Minimum weighted instance count for a node to be split further.
  double min_samples_split = 10.0;
  // Minimum Gini impurity decrease to accept a split.
  double min_gain = 1e-7;
  // Number of candidate attributes sampled per node; 0 means all (plain
  // CART). Random forests set this to ~sqrt(m).
  int max_features = 0;
  uint64_t seed = 7;
};

// CART-style decision tree with multiway categorical splits and weighted
// Gini impurity. The accuracy-optimizing, high-capacity behaviour of this
// learner is exactly what Hypothesis 1 is about: it fits the majority class
// of each biased region, producing the subgroup FPR/FNR divergence the paper
// demonstrates.
class DecisionTree : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeParams params = {});

  void Fit(const Dataset& train) override;
  double PredictProba(const Dataset& data, int row) const override;

  int NumNodes() const { return static_cast<int>(nodes_.size()); }
  int Depth() const { return depth_; }

 private:
  struct Node {
    int attribute = -1;  // -1 marks a leaf
    double positive_fraction = 0.5;
    // Child node index per attribute value code; -1 when the value did not
    // occur at this node during training.
    std::vector<int> children;
  };

  // Builds the subtree over `rows`; returns its node index.
  int BuildNode(const Dataset& data, const std::vector<int>& rows, int depth,
                std::vector<char>& used_attributes, Rng& rng);

  DecisionTreeParams params_;
  std::vector<Node> nodes_;
  int depth_ = 0;
};

}  // namespace remedy

#endif  // REMEDY_ML_DECISION_TREE_H_
