#ifndef REMEDY_ML_MODEL_FACTORY_H_
#define REMEDY_ML_MODEL_FACTORY_H_

#include <string>
#include <vector>

#include "ml/classifier.h"

namespace remedy {

// The four downstream classifiers the paper evaluates (Sec. V-A/b), the
// naive Bayes used as the pre-processing ranker, and gradient boosting as a
// beyond-the-paper stress test of the model-agnostic claim.
enum class ModelType {
  kDecisionTree,
  kRandomForest,
  kLogisticRegression,
  kNeuralNetwork,
  kNaiveBayes,
  kGradientBoosting,
};

// Short display name as used in the paper's figures: DT, RF, LG, NN, NB,
// GBT.
std::string ModelName(ModelType type);

// Classifier with the library's default hyper-parameters. `threads` is the
// in-model worker count for the learners with a parallel trainer (RF, LG,
// NN): 1 = serial, <= 0 = every usable CPU. Every learner is bit-identical
// across thread counts, so the knob only affects wall time. Callers that
// already fan out across models should keep the default of 1.
ClassifierPtr MakeClassifier(ModelType type, uint64_t seed = 7,
                             int threads = 1);

// The four models of the paper's evaluation: DT, RF, LG, NN.
std::vector<ModelType> StandardModels();

}  // namespace remedy

#endif  // REMEDY_ML_MODEL_FACTORY_H_
