#include "ml/cost_sensitive.h"

#include "common/check.h"

namespace remedy {

CostSensitiveClassifier::CostSensitiveClassifier(ClassifierPtr base,
                                                 CostMatrix costs)
    : base_(std::move(base)) {
  REMEDY_CHECK(base_ != nullptr);
  REMEDY_CHECK(costs.false_positive_cost > 0.0);
  REMEDY_CHECK(costs.false_negative_cost > 0.0);
  threshold_ = costs.false_positive_cost /
               (costs.false_positive_cost + costs.false_negative_cost);
}

void CostSensitiveClassifier::Fit(const Dataset& train) {
  base_->Fit(train);
}

double CostSensitiveClassifier::PredictProba(const Dataset& data,
                                             int row) const {
  return base_->PredictProba(data, row);
}

int CostSensitiveClassifier::Predict(const Dataset& data, int row) const {
  return PredictProba(data, row) >= threshold_ ? 1 : 0;
}

}  // namespace remedy
