#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/check.h"
#include "common/pipeline_metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"

namespace remedy {

RandomForest::RandomForest(RandomForestParams params) : params_(params) {
  REMEDY_CHECK(params_.num_trees > 0);
}

void RandomForest::Fit(const Dataset& train) {
  REMEDY_TRACE_SPAN("ml/fit");
  WallTimer timer;
  REMEDY_CHECK(train.NumRows() > 0);
  trees_.clear();
  trees_.resize(params_.num_trees);

  DecisionTreeParams tree_params = params_.tree;
  if (tree_params.max_features == 0) {
    tree_params.max_features = std::max(
        1, static_cast<int>(std::lround(std::sqrt(train.NumColumns()))));
  }

  // Weighted bootstrap: draw rows with probability proportional to weight,
  // via binary search over the cumulative weights (O(log n) per draw). The
  // prefix sums are shared read-only across the tree builders.
  std::vector<double> cumulative(train.NumRows());
  double total = 0.0;
  for (int r = 0; r < train.NumRows(); ++r) {
    total += train.Weight(r);
    cumulative[r] = total;
  }
  REMEDY_CHECK(total > 0.0) << "all training weights are zero";

  // Tree t consumes only its own keyed stream and writes only slot t, so
  // the forest is identical no matter how trees are scheduled.
  const auto build_tree = [&](int64_t t) {
    Rng rng(StreamSeed(params_.seed, static_cast<uint64_t>(t)));
    std::vector<int> sample(train.NumRows());
    for (int i = 0; i < train.NumRows(); ++i) {
      double draw = rng.Uniform() * total;
      auto it =
          std::upper_bound(cumulative.begin(), cumulative.end(), draw);
      sample[i] = static_cast<int>(
          std::min<size_t>(it - cumulative.begin(), cumulative.size() - 1));
    }
    Dataset bootstrap = train.Select(sample);
    // Bootstrapping already accounts for the weights; train unweighted.
    bootstrap.ResetWeights(1.0);
    DecisionTreeParams local_params = tree_params;
    local_params.seed = rng.engine()();
    DecisionTree tree(local_params);
    tree.Fit(bootstrap);
    trees_[t] = std::move(tree);
  };

  const int threads =
      std::min(ResolveThreadCount(params_.threads), params_.num_trees);
  if (threads > 1) {
    ThreadPool pool(threads);
    Status status = pool.ParallelFor(params_.num_trees, build_tree);
    REMEDY_CHECK(status.ok()) << status.message();
  } else {
    for (int t = 0; t < params_.num_trees; ++t) build_tree(t);
  }
  PipelineMetrics::Get().ml_trees_trained->Increment(params_.num_trees);
  PipelineMetrics::Get().ml_fits->Increment();
  PipelineMetrics::Get().ml_fit_ns->Observe(timer.Nanos());
}

double RandomForest::PredictProba(const Dataset& data, int row) const {
  REMEDY_CHECK(!trees_.empty()) << "RandomForest::Fit has not been called";
  double sum = 0.0;
  for (const DecisionTree& tree : trees_) {
    sum += tree.PredictProba(data, row);
  }
  return sum / trees_.size();
}

}  // namespace remedy
