#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace remedy {

RandomForest::RandomForest(RandomForestParams params) : params_(params) {
  REMEDY_CHECK(params_.num_trees > 0);
}

void RandomForest::Fit(const Dataset& train) {
  REMEDY_CHECK(train.NumRows() > 0);
  trees_.clear();
  trees_.reserve(params_.num_trees);

  DecisionTreeParams tree_params = params_.tree;
  if (tree_params.max_features == 0) {
    tree_params.max_features = std::max(
        1, static_cast<int>(std::lround(std::sqrt(train.NumColumns()))));
  }

  // Weighted bootstrap: draw rows with probability proportional to weight,
  // via binary search over the cumulative weights (O(log n) per draw).
  std::vector<double> cumulative(train.NumRows());
  double total = 0.0;
  for (int r = 0; r < train.NumRows(); ++r) {
    total += train.Weight(r);
    cumulative[r] = total;
  }
  REMEDY_CHECK(total > 0.0) << "all training weights are zero";

  Rng rng(params_.seed);
  for (int t = 0; t < params_.num_trees; ++t) {
    std::vector<int> sample(train.NumRows());
    for (int i = 0; i < train.NumRows(); ++i) {
      double draw = rng.Uniform() * total;
      auto it =
          std::upper_bound(cumulative.begin(), cumulative.end(), draw);
      sample[i] = static_cast<int>(
          std::min<size_t>(it - cumulative.begin(), cumulative.size() - 1));
    }
    Dataset bootstrap = train.Select(sample);
    // Bootstrapping already accounts for the weights; train unweighted.
    for (int r = 0; r < bootstrap.NumRows(); ++r) bootstrap.SetWeight(r, 1.0);
    tree_params.seed = rng.engine()();
    DecisionTree tree(tree_params);
    tree.Fit(bootstrap);
    trees_.push_back(std::move(tree));
  }
}

double RandomForest::PredictProba(const Dataset& data, int row) const {
  REMEDY_CHECK(!trees_.empty()) << "RandomForest::Fit has not been called";
  double sum = 0.0;
  for (const DecisionTree& tree : trees_) {
    sum += tree.PredictProba(data, row);
  }
  return sum / trees_.size();
}

}  // namespace remedy
