#include "ml/metrics.h"

#include "common/check.h"

namespace remedy {
namespace {

void Accumulate(int label, int prediction, ConfusionCounts* counts) {
  if (label == 1) {
    if (prediction == 1) {
      ++counts->true_positives;
    } else {
      ++counts->false_negatives;
    }
  } else {
    if (prediction == 1) {
      ++counts->false_positives;
    } else {
      ++counts->true_negatives;
    }
  }
}

}  // namespace

ConfusionCounts Confusion(const Dataset& data,
                          const std::vector<int>& predictions) {
  REMEDY_CHECK(static_cast<int>(predictions.size()) == data.NumRows());
  ConfusionCounts counts;
  for (int r = 0; r < data.NumRows(); ++r) {
    Accumulate(data.Label(r), predictions[r], &counts);
  }
  return counts;
}

ConfusionCounts ConfusionOnRows(const Dataset& data,
                                const std::vector<int>& predictions,
                                const std::vector<int>& rows) {
  REMEDY_CHECK(static_cast<int>(predictions.size()) == data.NumRows());
  ConfusionCounts counts;
  for (int r : rows) {
    REMEDY_DCHECK(r >= 0 && r < data.NumRows());
    Accumulate(data.Label(r), predictions[r], &counts);
  }
  return counts;
}

double Accuracy(const ConfusionCounts& counts) {
  int64_t total = counts.Total();
  if (total == 0) return 0.0;
  return static_cast<double>(counts.true_positives + counts.true_negatives) /
         static_cast<double>(total);
}

double FalsePositiveRate(const ConfusionCounts& counts) {
  int64_t negatives = counts.false_positives + counts.true_negatives;
  if (negatives == 0) return 0.0;
  return static_cast<double>(counts.false_positives) /
         static_cast<double>(negatives);
}

double FalseNegativeRate(const ConfusionCounts& counts) {
  int64_t positives = counts.true_positives + counts.false_negatives;
  if (positives == 0) return 0.0;
  return static_cast<double>(counts.false_negatives) /
         static_cast<double>(positives);
}

double Accuracy(const Dataset& data, const std::vector<int>& predictions) {
  return Accuracy(Confusion(data, predictions));
}

double FalsePositiveRate(const Dataset& data,
                         const std::vector<int>& predictions) {
  return FalsePositiveRate(Confusion(data, predictions));
}

double FalseNegativeRate(const Dataset& data,
                         const std::vector<int>& predictions) {
  return FalseNegativeRate(Confusion(data, predictions));
}

}  // namespace remedy
