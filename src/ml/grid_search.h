#ifndef REMEDY_ML_GRID_SEARCH_H_
#define REMEDY_ML_GRID_SEARCH_H_

#include <functional>
#include <vector>

#include "ml/classifier.h"
#include "ml/model_factory.h"

namespace remedy {

// Hyper-parameter selection by held-out validation accuracy, mirroring the
// paper's "grid search to obtain the optimal hyperparameters" step.

struct GridSearchResult {
  int best_index = -1;
  double best_accuracy = 0.0;
  std::vector<double> accuracies;  // one per candidate
};

// Evaluates each candidate factory on a (train, validation) split of `train`
// and returns the index with the highest validation accuracy (ties go to the
// earlier candidate). `validation_fraction` of rows are held out.
GridSearchResult GridSearch(
    const Dataset& train,
    const std::vector<std::function<ClassifierPtr()>>& candidates,
    double validation_fraction = 0.2, uint64_t seed = 17);

// Grid-searches a small per-model hyper-parameter grid, then refits the
// winner on all of `train` and returns it.
ClassifierPtr TunedClassifier(ModelType type, const Dataset& train,
                              uint64_t seed = 7);

}  // namespace remedy

#endif  // REMEDY_ML_GRID_SEARCH_H_
