#ifndef REMEDY_ML_GRID_SEARCH_H_
#define REMEDY_ML_GRID_SEARCH_H_

#include <functional>
#include <vector>

#include "ml/classifier.h"
#include "ml/model_factory.h"

namespace remedy {

// Hyper-parameter selection by held-out validation accuracy, mirroring the
// paper's "grid search to obtain the optimal hyperparameters" step.

struct GridSearchResult {
  int best_index = -1;
  double best_accuracy = 0.0;
  std::vector<double> accuracies;  // one per candidate
};

// Evaluates each candidate factory on a (train, validation) split of `train`
// and returns the index with the highest validation accuracy (ties go to the
// earlier candidate). `validation_fraction` of rows are held out. Candidates
// are independent, so `threads` of them train concurrently (1 = serial,
// <= 0 = every usable CPU); accuracies land in candidate order and the
// winner is picked serially afterwards, so the result is identical for
// every thread count.
GridSearchResult GridSearch(
    const Dataset& train,
    const std::vector<std::function<ClassifierPtr()>>& candidates,
    double validation_fraction = 0.2, uint64_t seed = 17, int threads = 1);

// Grid-searches a small per-model hyper-parameter grid, then refits the
// winner on all of `train` and returns it. `threads` parallelizes across
// the grid's candidates, not inside the models.
ClassifierPtr TunedClassifier(ModelType type, const Dataset& train,
                              uint64_t seed = 7, int threads = 1);

}  // namespace remedy

#endif  // REMEDY_ML_GRID_SEARCH_H_
