#ifndef REMEDY_ML_LOGISTIC_REGRESSION_H_
#define REMEDY_ML_LOGISTIC_REGRESSION_H_

#include <memory>
#include <vector>

#include "data/encoding.h"
#include "ml/classifier.h"

namespace remedy {

struct LogisticRegressionParams {
  double learning_rate = 0.5;
  double l2 = 1e-4;
  int epochs = 200;
  // Workers for the blocked gradient reduction: 1 = serial, <= 0 = every
  // usable CPU. The coefficients are bit-identical for every value: rows
  // are partitioned into fixed-size blocks whose partial gradients are
  // combined in block order regardless of which worker produced them.
  int threads = 1;
};

// L2-regularized logistic regression over one-hot-encoded categorical
// features, trained by full-batch gradient descent on the weighted
// log-loss. Deterministic (zero initialization, fixed epoch count).
class LogisticRegression : public Classifier {
 public:
  explicit LogisticRegression(LogisticRegressionParams params = {});

  void Fit(const Dataset& train) override;
  void FitEncoded(const EncodedMatrix& train) override;
  double PredictProba(const Dataset& data, int row) const override;
  std::vector<double> PredictProbaAllEncoded(
      const EncodedMatrix& data) const override;

  const std::vector<double>& coefficients() const { return coefficients_; }
  double intercept() const { return intercept_; }

 private:
  LogisticRegressionParams params_;
  std::unique_ptr<OneHotEncoder> encoder_;
  std::vector<double> coefficients_;
  double intercept_ = 0.0;
};

}  // namespace remedy

#endif  // REMEDY_ML_LOGISTIC_REGRESSION_H_
