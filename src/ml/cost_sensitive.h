#ifndef REMEDY_ML_COST_SENSITIVE_H_
#define REMEDY_ML_COST_SENSITIVE_H_

#include <memory>

#include "ml/classifier.h"

namespace remedy {

// Misclassification costs for cost-sensitive decision making.
struct CostMatrix {
  double false_positive_cost = 1.0;
  double false_negative_cost = 1.0;
};

// Cost-sensitive wrapper (Zadrozny, Langford & Abe [36]): keeps the base
// model's probability estimates and moves the decision threshold to the
// Bayes-optimal point  c_fp / (c_fp + c_fn).
//
// The paper's Limitations section notes that the IBS-unfairness correlation
// holds for classifiers *optimized for accuracy* and may break for
// cost-sensitive ones — this wrapper exists so that claim can be tested
// (see bench/ablation_cost_sensitive and the integration tests).
class CostSensitiveClassifier : public Classifier {
 public:
  // Takes ownership of `base`. Costs must be positive.
  CostSensitiveClassifier(ClassifierPtr base, CostMatrix costs);

  void Fit(const Dataset& train) override;
  double PredictProba(const Dataset& data, int row) const override;
  // Thresholds at c_fp / (c_fp + c_fn) instead of 0.5.
  int Predict(const Dataset& data, int row) const override;

  double Threshold() const { return threshold_; }

 private:
  ClassifierPtr base_;
  double threshold_ = 0.5;
};

}  // namespace remedy

#endif  // REMEDY_ML_COST_SENSITIVE_H_
