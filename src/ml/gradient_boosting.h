#ifndef REMEDY_ML_GRADIENT_BOOSTING_H_
#define REMEDY_ML_GRADIENT_BOOSTING_H_

#include <vector>

#include "ml/classifier.h"

namespace remedy {

struct GradientBoostingParams {
  int rounds = 60;
  int max_depth = 3;
  double learning_rate = 0.2;
  // Minimum weighted instance count for an internal split.
  double min_samples_split = 20.0;
  uint64_t seed = 19;
};

// Gradient-boosted trees on the logistic loss: shallow multiway regression
// trees fit to the residuals, leaf values set by a Newton step.
//
// Not part of the paper's evaluation — it exists to stress the claim that
// the remedy is model agnostic ("can be applied to any machine learning
// classifiers"): boosting is also accuracy-optimizing, so Hypothesis 1
// predicts it inherits subgroup unfairness from biased regions just like
// DT / RF / LG / NN do (see bench/extension_model_agnostic).
class GradientBoosting : public Classifier {
 public:
  explicit GradientBoosting(GradientBoostingParams params = {});

  void Fit(const Dataset& train) override;
  double PredictProba(const Dataset& data, int row) const override;

  int NumTrees() const { return static_cast<int>(trees_.size()); }

 private:
  // Regression tree over categorical attributes: internal nodes split
  // multiway on one attribute, leaves hold an additive logit value.
  struct Node {
    int attribute = -1;    // -1 marks a leaf
    double value = 0.0;    // leaf logit increment (Newton step)
    std::vector<int> children;
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  // Builds a subtree over `rows` fitting `gradient`/`hessian`; returns the
  // node index within `tree`.
  int BuildNode(const Dataset& data, const std::vector<int>& rows,
                const std::vector<double>& gradient,
                const std::vector<double>& hessian, int depth, Tree* tree);

  // Additive logit contribution of one tree for a row.
  double TreeValue(const Tree& tree, const Dataset& data, int row) const;

  GradientBoostingParams params_;
  double base_logit_ = 0.0;
  std::vector<Tree> trees_;
  bool fitted_ = false;
};

}  // namespace remedy

#endif  // REMEDY_ML_GRADIENT_BOOSTING_H_
