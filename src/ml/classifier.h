#ifndef REMEDY_ML_CLASSIFIER_H_
#define REMEDY_ML_CLASSIFIER_H_

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "data/encoding.h"

namespace remedy {

// Binary classifier interface shared by every learner in the library.
//
// All learners consume categorical datasets (numeric learners one-hot encode
// internally), honor per-instance weights from Dataset::Weight — which is
// what the reweighting baselines rely on — and are deterministic given their
// seed.
//
// The Encoded variants accept a pre-built EncodedMatrix so the one-hot
// representation is computed once per split and shared across models and
// metrics. They are contractually bit-identical to the Dataset forms: a
// learner that overrides them must produce the same model / predictions as
// its Fit / PredictProba path on the matrix's dataset.
class Classifier {
 public:
  virtual ~Classifier() = default;

  // Trains on `train`; may be called again to retrain from scratch.
  virtual void Fit(const Dataset& train) = 0;

  // Trains on the dataset behind `train`, reusing its cached encoding when
  // the learner has one (logistic regression, neural network). Default
  // forwards to Fit.
  virtual void FitEncoded(const EncodedMatrix& train) { Fit(train.data()); }

  // P(y = 1 | x) for row `row` of `data`. Requires a prior Fit.
  virtual double PredictProba(const Dataset& data, int row) const = 0;

  // Hard prediction at the 0.5 threshold.
  virtual int Predict(const Dataset& data, int row) const {
    return PredictProba(data, row) >= 0.5 ? 1 : 0;
  }

  // Hard predictions for every row.
  std::vector<int> PredictAll(const Dataset& data) const {
    std::vector<int> predictions(data.NumRows());
    for (int r = 0; r < data.NumRows(); ++r) predictions[r] = Predict(data, r);
    return predictions;
  }

  // Probabilities for every row.
  std::vector<double> PredictProbaAll(const Dataset& data) const {
    std::vector<double> probabilities(data.NumRows());
    for (int r = 0; r < data.NumRows(); ++r) {
      probabilities[r] = PredictProba(data, r);
    }
    return probabilities;
  }

  // Probabilities for every row of the dataset behind `data`, reusing its
  // cached encoding when the learner has one. Default forwards to
  // PredictProbaAll.
  virtual std::vector<double> PredictProbaAllEncoded(
      const EncodedMatrix& data) const {
    return PredictProbaAll(data.data());
  }

  // Hard predictions at the fixed 0.5 threshold via PredictProbaAllEncoded.
  // Learners with a custom decision rule (cost-sensitive wrapper, threshold
  // post-processing) must be driven through PredictAll instead.
  std::vector<int> PredictAllEncoded(const EncodedMatrix& data) const {
    std::vector<double> probabilities = PredictProbaAllEncoded(data);
    std::vector<int> predictions(probabilities.size());
    for (size_t r = 0; r < probabilities.size(); ++r) {
      predictions[r] = probabilities[r] >= 0.5 ? 1 : 0;
    }
    return predictions;
  }
};

using ClassifierPtr = std::unique_ptr<Classifier>;

}  // namespace remedy

#endif  // REMEDY_ML_CLASSIFIER_H_
