#ifndef REMEDY_ML_CLASSIFIER_H_
#define REMEDY_ML_CLASSIFIER_H_

#include <memory>
#include <vector>

#include "data/dataset.h"

namespace remedy {

// Binary classifier interface shared by every learner in the library.
//
// All learners consume categorical datasets (numeric learners one-hot encode
// internally), honor per-instance weights from Dataset::Weight — which is
// what the reweighting baselines rely on — and are deterministic given their
// seed.
class Classifier {
 public:
  virtual ~Classifier() = default;

  // Trains on `train`; may be called again to retrain from scratch.
  virtual void Fit(const Dataset& train) = 0;

  // P(y = 1 | x) for row `row` of `data`. Requires a prior Fit.
  virtual double PredictProba(const Dataset& data, int row) const = 0;

  // Hard prediction at the 0.5 threshold.
  virtual int Predict(const Dataset& data, int row) const {
    return PredictProba(data, row) >= 0.5 ? 1 : 0;
  }

  // Hard predictions for every row.
  std::vector<int> PredictAll(const Dataset& data) const {
    std::vector<int> predictions(data.NumRows());
    for (int r = 0; r < data.NumRows(); ++r) predictions[r] = Predict(data, r);
    return predictions;
  }

  // Probabilities for every row.
  std::vector<double> PredictProbaAll(const Dataset& data) const {
    std::vector<double> probabilities(data.NumRows());
    for (int r = 0; r < data.NumRows(); ++r) {
      probabilities[r] = PredictProba(data, r);
    }
    return probabilities;
  }
};

using ClassifierPtr = std::unique_ptr<Classifier>;

}  // namespace remedy

#endif  // REMEDY_ML_CLASSIFIER_H_
