#ifndef REMEDY_ML_NAIVE_BAYES_H_
#define REMEDY_ML_NAIVE_BAYES_H_

#include <vector>

#include "ml/classifier.h"

namespace remedy {

struct NaiveBayesParams {
  double smoothing = 1.0;  // Laplace / additive smoothing
};

// Categorical naive Bayes with Laplace smoothing and weighted counts.
// Doubles as the borderline-instance ranker that preferential sampling and
// data massaging use (Sec. IV-A), mirroring the paper's choice of a Naive
// Bayes ranker.
class NaiveBayes : public Classifier {
 public:
  explicit NaiveBayes(NaiveBayesParams params = {});

  void Fit(const Dataset& train) override;
  double PredictProba(const Dataset& data, int row) const override;

 private:
  NaiveBayesParams params_;
  // log P(y)
  double log_prior_[2] = {0.0, 0.0};
  // log P(a_c = v | y): log_likelihood_[y][c][v]
  std::vector<std::vector<std::vector<double>>> log_likelihood_;
  bool fitted_ = false;
};

}  // namespace remedy

#endif  // REMEDY_ML_NAIVE_BAYES_H_
