#include "ml/grid_search.h"

#include <algorithm>

#include "common/check.h"
#include "common/pipeline_metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "ml/decision_tree.h"
#include "ml/gradient_boosting.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "ml/neural_network.h"
#include "ml/random_forest.h"

namespace remedy {

GridSearchResult GridSearch(
    const Dataset& train,
    const std::vector<std::function<ClassifierPtr()>>& candidates,
    double validation_fraction, uint64_t seed, int threads) {
  REMEDY_TRACE_SPAN("ml/grid_search");
  REMEDY_CHECK(!candidates.empty());
  REMEDY_CHECK(validation_fraction > 0.0 && validation_fraction < 1.0);
  Rng rng(seed);
  auto [fit_split, validation] =
      train.TrainTestSplit(1.0 - validation_fraction, rng);
  const EncodedMatrix fit_encoded(fit_split);
  const EncodedMatrix validation_encoded(validation);

  GridSearchResult result;
  result.accuracies.assign(candidates.size(), 0.0);
  // Candidates are independent; each writes only accuracies[i], so the
  // fan-out leaves the scores — and the serial argmax below — unchanged.
  const auto evaluate_candidate = [&](int64_t i) {
    ClassifierPtr model = candidates[i]();
    model->FitEncoded(fit_encoded);
    result.accuracies[i] =
        Accuracy(validation, model->PredictAllEncoded(validation_encoded));
  };
  const int workers = std::min<int>(ResolveThreadCount(threads),
                                    static_cast<int>(candidates.size()));
  if (workers > 1) {
    ThreadPool pool(workers);
    Status status = pool.ParallelFor(
        static_cast<int64_t>(candidates.size()), evaluate_candidate);
    REMEDY_CHECK(status.ok()) << status.message();
  } else {
    for (size_t i = 0; i < candidates.size(); ++i) {
      evaluate_candidate(static_cast<int64_t>(i));
    }
  }
  PipelineMetrics::Get().ml_grid_candidates->Increment(
      static_cast<int64_t>(candidates.size()));
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (result.best_index < 0 ||
        result.accuracies[i] > result.best_accuracy) {
      result.best_index = static_cast<int>(i);
      result.best_accuracy = result.accuracies[i];
    }
  }
  return result;
}

ClassifierPtr TunedClassifier(ModelType type, const Dataset& train,
                              uint64_t seed, int threads) {
  std::vector<std::function<ClassifierPtr()>> candidates;
  switch (type) {
    case ModelType::kDecisionTree:
      for (int depth : {8, 12, 16}) {
        candidates.push_back([depth, seed] {
          DecisionTreeParams params;
          params.max_depth = depth;
          params.seed = seed;
          return std::make_unique<DecisionTree>(params);
        });
      }
      break;
    case ModelType::kRandomForest:
      for (int trees : {10, 20}) {
        candidates.push_back([trees, seed] {
          RandomForestParams params;
          params.num_trees = trees;
          params.seed = seed;
          return std::make_unique<RandomForest>(params);
        });
      }
      break;
    case ModelType::kLogisticRegression:
      for (double l2 : {1e-4, 1e-2}) {
        candidates.push_back([l2] {
          LogisticRegressionParams params;
          params.l2 = l2;
          return std::make_unique<LogisticRegression>(params);
        });
      }
      break;
    case ModelType::kNeuralNetwork:
      for (int hidden : {8, 16}) {
        candidates.push_back([hidden, seed] {
          NeuralNetworkParams params;
          params.hidden_units = hidden;
          params.seed = seed;
          return std::make_unique<NeuralNetwork>(params);
        });
      }
      break;
    case ModelType::kGradientBoosting:
      for (int rounds : {40, 80}) {
        candidates.push_back([rounds, seed] {
          GradientBoostingParams params;
          params.rounds = rounds;
          params.seed = seed;
          return std::make_unique<GradientBoosting>(params);
        });
      }
      break;
    case ModelType::kNaiveBayes:
      for (double alpha : {0.5, 1.0, 2.0}) {
        candidates.push_back([alpha] {
          NaiveBayesParams params;
          params.smoothing = alpha;
          return std::make_unique<NaiveBayes>(params);
        });
      }
      break;
  }
  GridSearchResult result = GridSearch(train, candidates, 0.2, seed, threads);
  ClassifierPtr best = candidates[result.best_index]();
  best->Fit(train);
  return best;
}

}  // namespace remedy
