#include "ml/grid_search.h"

#include "common/check.h"
#include "common/rng.h"
#include "ml/decision_tree.h"
#include "ml/gradient_boosting.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "ml/neural_network.h"
#include "ml/random_forest.h"

namespace remedy {

GridSearchResult GridSearch(
    const Dataset& train,
    const std::vector<std::function<ClassifierPtr()>>& candidates,
    double validation_fraction, uint64_t seed) {
  REMEDY_CHECK(!candidates.empty());
  REMEDY_CHECK(validation_fraction > 0.0 && validation_fraction < 1.0);
  Rng rng(seed);
  auto [fit_split, validation] =
      train.TrainTestSplit(1.0 - validation_fraction, rng);

  GridSearchResult result;
  result.accuracies.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    ClassifierPtr model = candidates[i]();
    model->Fit(fit_split);
    double accuracy = Accuracy(validation, model->PredictAll(validation));
    result.accuracies.push_back(accuracy);
    if (result.best_index < 0 || accuracy > result.best_accuracy) {
      result.best_index = static_cast<int>(i);
      result.best_accuracy = accuracy;
    }
  }
  return result;
}

ClassifierPtr TunedClassifier(ModelType type, const Dataset& train,
                              uint64_t seed) {
  std::vector<std::function<ClassifierPtr()>> candidates;
  switch (type) {
    case ModelType::kDecisionTree:
      for (int depth : {8, 12, 16}) {
        candidates.push_back([depth, seed] {
          DecisionTreeParams params;
          params.max_depth = depth;
          params.seed = seed;
          return std::make_unique<DecisionTree>(params);
        });
      }
      break;
    case ModelType::kRandomForest:
      for (int trees : {10, 20}) {
        candidates.push_back([trees, seed] {
          RandomForestParams params;
          params.num_trees = trees;
          params.seed = seed;
          return std::make_unique<RandomForest>(params);
        });
      }
      break;
    case ModelType::kLogisticRegression:
      for (double l2 : {1e-4, 1e-2}) {
        candidates.push_back([l2] {
          LogisticRegressionParams params;
          params.l2 = l2;
          return std::make_unique<LogisticRegression>(params);
        });
      }
      break;
    case ModelType::kNeuralNetwork:
      for (int hidden : {8, 16}) {
        candidates.push_back([hidden, seed] {
          NeuralNetworkParams params;
          params.hidden_units = hidden;
          params.seed = seed;
          return std::make_unique<NeuralNetwork>(params);
        });
      }
      break;
    case ModelType::kGradientBoosting:
      for (int rounds : {40, 80}) {
        candidates.push_back([rounds, seed] {
          GradientBoostingParams params;
          params.rounds = rounds;
          params.seed = seed;
          return std::make_unique<GradientBoosting>(params);
        });
      }
      break;
    case ModelType::kNaiveBayes:
      for (double alpha : {0.5, 1.0, 2.0}) {
        candidates.push_back([alpha] {
          NaiveBayesParams params;
          params.smoothing = alpha;
          return std::make_unique<NaiveBayes>(params);
        });
      }
      break;
  }
  GridSearchResult result = GridSearch(train, candidates, 0.2, seed);
  ClassifierPtr best = candidates[result.best_index]();
  best->Fit(train);
  return best;
}

}  // namespace remedy
