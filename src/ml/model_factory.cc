#include "ml/model_factory.h"

#include "common/check.h"
#include "ml/decision_tree.h"
#include "ml/gradient_boosting.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"
#include "ml/neural_network.h"
#include "ml/random_forest.h"

namespace remedy {

std::string ModelName(ModelType type) {
  switch (type) {
    case ModelType::kDecisionTree:
      return "DT";
    case ModelType::kRandomForest:
      return "RF";
    case ModelType::kLogisticRegression:
      return "LG";
    case ModelType::kNeuralNetwork:
      return "NN";
    case ModelType::kNaiveBayes:
      return "NB";
    case ModelType::kGradientBoosting:
      return "GBT";
  }
  REMEDY_CHECK(false) << "unknown model type";
  return "";
}

ClassifierPtr MakeClassifier(ModelType type, uint64_t seed, int threads) {
  switch (type) {
    case ModelType::kDecisionTree: {
      DecisionTreeParams params;
      params.seed = seed;
      return std::make_unique<DecisionTree>(params);
    }
    case ModelType::kRandomForest: {
      RandomForestParams params;
      params.seed = seed;
      params.threads = threads;
      return std::make_unique<RandomForest>(params);
    }
    case ModelType::kLogisticRegression: {
      LogisticRegressionParams params;
      params.threads = threads;
      return std::make_unique<LogisticRegression>(params);
    }
    case ModelType::kNeuralNetwork: {
      NeuralNetworkParams params;
      params.seed = seed;
      params.threads = threads;
      return std::make_unique<NeuralNetwork>(params);
    }
    case ModelType::kNaiveBayes: {
      return std::make_unique<NaiveBayes>();
    }
    case ModelType::kGradientBoosting: {
      GradientBoostingParams params;
      params.seed = seed;
      return std::make_unique<GradientBoosting>(params);
    }
  }
  REMEDY_CHECK(false) << "unknown model type";
  return nullptr;
}

std::vector<ModelType> StandardModels() {
  return {ModelType::kDecisionTree, ModelType::kRandomForest,
          ModelType::kLogisticRegression, ModelType::kNeuralNetwork};
}

}  // namespace remedy
