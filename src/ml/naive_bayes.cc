#include "ml/naive_bayes.h"

#include <cmath>

#include "common/check.h"

namespace remedy {

NaiveBayes::NaiveBayes(NaiveBayesParams params) : params_(params) {
  REMEDY_CHECK(params_.smoothing > 0.0);
}

void NaiveBayes::Fit(const Dataset& train) {
  REMEDY_CHECK(train.NumRows() > 0);
  const int num_columns = train.NumColumns();
  const double alpha = params_.smoothing;

  double class_weight[2] = {alpha, alpha};
  // counts[y][c][v]: weighted count of value v of attribute c in class y.
  std::vector<std::vector<std::vector<double>>> counts(2);
  for (int y = 0; y < 2; ++y) {
    counts[y].resize(num_columns);
    for (int c = 0; c < num_columns; ++c) {
      counts[y][c].assign(train.schema().attribute(c).Cardinality(), alpha);
    }
  }
  for (int r = 0; r < train.NumRows(); ++r) {
    int y = train.Label(r);
    double w = train.Weight(r);
    class_weight[y] += w;
    for (int c = 0; c < num_columns; ++c) {
      counts[y][c][train.Value(r, c)] += w;
    }
  }

  double total = class_weight[0] + class_weight[1];
  log_prior_[0] = std::log(class_weight[0] / total);
  log_prior_[1] = std::log(class_weight[1] / total);
  log_likelihood_.assign(2, {});
  for (int y = 0; y < 2; ++y) {
    log_likelihood_[y].resize(num_columns);
    for (int c = 0; c < num_columns; ++c) {
      int cardinality = train.schema().attribute(c).Cardinality();
      // Smoothing mass already added above; the denominator adds the raw
      // class weight plus one alpha per value.
      double denom = class_weight[y] - alpha + alpha * cardinality;
      log_likelihood_[y][c].resize(cardinality);
      for (int v = 0; v < cardinality; ++v) {
        log_likelihood_[y][c][v] = std::log(counts[y][c][v] / denom);
      }
    }
  }
  fitted_ = true;
}

double NaiveBayes::PredictProba(const Dataset& data, int row) const {
  REMEDY_CHECK(fitted_) << "NaiveBayes::Fit has not been called";
  double log_joint[2] = {log_prior_[0], log_prior_[1]};
  for (int y = 0; y < 2; ++y) {
    for (int c = 0; c < data.NumColumns(); ++c) {
      log_joint[y] += log_likelihood_[y][c][data.Value(row, c)];
    }
  }
  // P(y=1 | x) = 1 / (1 + exp(log_joint[0] - log_joint[1]))
  double diff = log_joint[0] - log_joint[1];
  if (diff >= 0) {
    double e = std::exp(-diff);
    return e / (1.0 + e);
  }
  return 1.0 / (1.0 + std::exp(diff));
}

}  // namespace remedy
