#ifndef REMEDY_ML_METRICS_H_
#define REMEDY_ML_METRICS_H_

#include <vector>

#include "data/dataset.h"

namespace remedy {

// Confusion-matrix counts of binary predictions against ground truth.
struct ConfusionCounts {
  int64_t true_positives = 0;
  int64_t false_positives = 0;
  int64_t true_negatives = 0;
  int64_t false_negatives = 0;

  int64_t Total() const {
    return true_positives + false_positives + true_negatives +
           false_negatives;
  }
};

// Confusion counts over all rows of `data`.
ConfusionCounts Confusion(const Dataset& data,
                          const std::vector<int>& predictions);

// Confusion counts restricted to `rows`.
ConfusionCounts ConfusionOnRows(const Dataset& data,
                                const std::vector<int>& predictions,
                                const std::vector<int>& rows);

// Fraction of correct predictions; 0 on empty input.
double Accuracy(const ConfusionCounts& counts);

// False positive rate Pr[h(x)=1 | y=0]; 0 when there are no negatives.
double FalsePositiveRate(const ConfusionCounts& counts);

// False negative rate Pr[h(x)=0 | y=1]; 0 when there are no positives.
double FalseNegativeRate(const ConfusionCounts& counts);

double Accuracy(const Dataset& data, const std::vector<int>& predictions);
double FalsePositiveRate(const Dataset& data,
                         const std::vector<int>& predictions);
double FalseNegativeRate(const Dataset& data,
                         const std::vector<int>& predictions);

}  // namespace remedy

#endif  // REMEDY_ML_METRICS_H_
