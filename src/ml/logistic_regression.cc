#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/pipeline_metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"

namespace remedy {
namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

// Rows per gradient block. Fixed (never derived from the thread count) so
// the partial sums — and therefore the combined gradient — are the same no
// matter how many workers claim blocks.
constexpr int kGradientBlockRows = 2048;

}  // namespace

LogisticRegression::LogisticRegression(LogisticRegressionParams params)
    : params_(params) {
  REMEDY_CHECK(params_.epochs > 0);
  REMEDY_CHECK(params_.learning_rate > 0.0);
  REMEDY_CHECK(params_.l2 >= 0.0);
}

void LogisticRegression::Fit(const Dataset& train) {
  FitEncoded(EncodedMatrix(train));
}

void LogisticRegression::FitEncoded(const EncodedMatrix& train) {
  REMEDY_TRACE_SPAN("ml/fit");
  WallTimer timer;
  const Dataset& data = train.data();
  REMEDY_CHECK(data.NumRows() > 0);
  encoder_ = std::make_unique<OneHotEncoder>(train.encoder());
  const int width = train.Width();
  const int n = data.NumRows();
  const int num_columns = data.NumColumns();
  coefficients_.assign(width, 0.0);
  intercept_ = 0.0;

  std::vector<double> weights(n);
  double total_weight = 0.0;
  for (int r = 0; r < n; ++r) {
    weights[r] = data.Weight(r);
    total_weight += weights[r];
  }
  REMEDY_CHECK(total_weight > 0.0) << "all training weights are zero";

  const int num_blocks = (n + kGradientBlockRows - 1) / kGradientBlockRows;
  const int threads =
      std::min(ResolveThreadCount(params_.threads), num_blocks);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  // Slot `b` holds block b's partial gradient: `width` coefficient entries
  // plus the intercept entry at index `width`.
  const size_t stride = static_cast<size_t>(width) + 1;
  std::vector<double> partial(static_cast<size_t>(num_blocks) * stride);
  const auto block_gradient = [&](int64_t b) {
    double* g = partial.data() + static_cast<size_t>(b) * stride;
    std::fill(g, g + stride, 0.0);
    const int begin = static_cast<int>(b) * kGradientBlockRows;
    const int end = std::min(n, begin + kGradientBlockRows);
    for (int r = begin; r < end; ++r) {
      const int* x = train.ActiveRow(r);
      double z = intercept_;
      for (int c = 0; c < num_columns; ++c) z += coefficients_[x[c]];
      double error = (Sigmoid(z) - data.Label(r)) * weights[r];
      for (int c = 0; c < num_columns; ++c) g[x[c]] += error;
      g[width] += error;
    }
  };

  std::vector<double> gradient(width);
  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    if (pool != nullptr) {
      Status status = pool->ParallelFor(num_blocks, block_gradient);
      REMEDY_CHECK(status.ok()) << status.message();
    } else {
      for (int b = 0; b < num_blocks; ++b) block_gradient(b);
    }
    // Combine partials in ascending block order — the fixed reduction
    // order that keeps the update independent of worker scheduling.
    std::fill(gradient.begin(), gradient.end(), 0.0);
    double intercept_gradient = 0.0;
    for (int b = 0; b < num_blocks; ++b) {
      const double* g = partial.data() + static_cast<size_t>(b) * stride;
      for (int j = 0; j < width; ++j) gradient[j] += g[j];
      intercept_gradient += g[width];
    }
    double step = params_.learning_rate / total_weight;
    for (int j = 0; j < width; ++j) {
      coefficients_[j] -=
          step * gradient[j] + params_.learning_rate * params_.l2 *
                                   coefficients_[j];
    }
    intercept_ -= step * intercept_gradient;
  }
  PipelineMetrics::Get().ml_epochs->Increment(params_.epochs);
  PipelineMetrics::Get().ml_fits->Increment();
  PipelineMetrics::Get().ml_fit_ns->Observe(timer.Nanos());
}

double LogisticRegression::PredictProba(const Dataset& data, int row) const {
  REMEDY_CHECK(encoder_ != nullptr)
      << "LogisticRegression::Fit has not been called";
  double z = intercept_;
  for (int c = 0; c < data.NumColumns(); ++c) {
    z += coefficients_[encoder_->Offset(c) + data.Value(row, c)];
  }
  return Sigmoid(z);
}

std::vector<double> LogisticRegression::PredictProbaAllEncoded(
    const EncodedMatrix& data) const {
  REMEDY_CHECK(encoder_ != nullptr)
      << "LogisticRegression::Fit has not been called";
  const int num_columns = data.NumColumns();
  std::vector<double> probabilities(data.NumRows());
  for (int r = 0; r < data.NumRows(); ++r) {
    const int* x = data.ActiveRow(r);
    double z = intercept_;
    for (int c = 0; c < num_columns; ++c) z += coefficients_[x[c]];
    probabilities[r] = Sigmoid(z);
  }
  return probabilities;
}

}  // namespace remedy
