#include "ml/logistic_regression.h"

#include <cmath>

#include "common/check.h"

namespace remedy {
namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

LogisticRegression::LogisticRegression(LogisticRegressionParams params)
    : params_(params) {
  REMEDY_CHECK(params_.epochs > 0);
  REMEDY_CHECK(params_.learning_rate > 0.0);
  REMEDY_CHECK(params_.l2 >= 0.0);
}

void LogisticRegression::Fit(const Dataset& train) {
  REMEDY_CHECK(train.NumRows() > 0);
  encoder_ = std::make_unique<OneHotEncoder>(train.schema());
  const int width = encoder_->Width();
  const int n = train.NumRows();
  coefficients_.assign(width, 0.0);
  intercept_ = 0.0;

  // One-hot rows are sparse (exactly one active indicator per attribute),
  // so train directly on the per-attribute active index.
  const int num_columns = train.NumColumns();
  std::vector<int> active(static_cast<size_t>(n) * num_columns);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < num_columns; ++c) {
      active[static_cast<size_t>(r) * num_columns + c] =
          encoder_->Offset(c) + train.Value(r, c);
    }
  }

  std::vector<double> weights(n);
  double total_weight = 0.0;
  for (int r = 0; r < n; ++r) {
    weights[r] = train.Weight(r);
    total_weight += weights[r];
  }
  REMEDY_CHECK(total_weight > 0.0) << "all training weights are zero";

  std::vector<double> gradient(width);
  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    std::fill(gradient.begin(), gradient.end(), 0.0);
    double intercept_gradient = 0.0;
    for (int r = 0; r < n; ++r) {
      const int* x = active.data() + static_cast<size_t>(r) * num_columns;
      double z = intercept_;
      for (int c = 0; c < num_columns; ++c) z += coefficients_[x[c]];
      double error = (Sigmoid(z) - train.Label(r)) * weights[r];
      for (int c = 0; c < num_columns; ++c) gradient[x[c]] += error;
      intercept_gradient += error;
    }
    double step = params_.learning_rate / total_weight;
    for (int j = 0; j < width; ++j) {
      coefficients_[j] -=
          step * gradient[j] + params_.learning_rate * params_.l2 *
                                   coefficients_[j];
    }
    intercept_ -= step * intercept_gradient;
  }
}

double LogisticRegression::PredictProba(const Dataset& data, int row) const {
  REMEDY_CHECK(encoder_ != nullptr)
      << "LogisticRegression::Fit has not been called";
  double z = intercept_;
  for (int c = 0; c < data.NumColumns(); ++c) {
    z += coefficients_[encoder_->Offset(c) + data.Value(row, c)];
  }
  return Sigmoid(z);
}

}  // namespace remedy
