#include "ml/gradient_boosting.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace remedy {
namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

// Newton leaf value with L2-ish damping to keep steps bounded.
double LeafValue(double gradient_sum, double hessian_sum) {
  constexpr double kDamping = 1.0;
  constexpr double kMaxStep = 4.0;
  double value = gradient_sum / (hessian_sum + kDamping);
  return std::clamp(value, -kMaxStep, kMaxStep);
}

}  // namespace

GradientBoosting::GradientBoosting(GradientBoostingParams params)
    : params_(params) {
  REMEDY_CHECK(params_.rounds > 0);
  REMEDY_CHECK(params_.max_depth >= 1);
  REMEDY_CHECK(params_.learning_rate > 0.0);
}

int GradientBoosting::BuildNode(const Dataset& data,
                                const std::vector<int>& rows,
                                const std::vector<double>& gradient,
                                const std::vector<double>& hessian,
                                int depth, Tree* tree) {
  double gradient_sum = 0.0, hessian_sum = 0.0, weight_sum = 0.0;
  for (int r : rows) {
    gradient_sum += gradient[r];
    hessian_sum += hessian[r];
    weight_sum += data.Weight(r);
  }

  int node_index = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();
  tree->nodes[node_index].value = LeafValue(gradient_sum, hessian_sum);
  if (depth >= params_.max_depth ||
      weight_sum < params_.min_samples_split) {
    return node_index;
  }

  // Score = sum over children of G_c^2 / (H_c + 1); pick the attribute
  // maximizing the gain over the unsplit node.
  const double parent_score =
      gradient_sum * gradient_sum / (hessian_sum + 1.0);
  int best_attribute = -1;
  double best_gain = 1e-9;
  std::vector<double> child_gradient, child_hessian;
  for (int attribute = 0; attribute < data.NumColumns(); ++attribute) {
    int cardinality = data.schema().attribute(attribute).Cardinality();
    if (cardinality < 2) continue;
    child_gradient.assign(cardinality, 0.0);
    child_hessian.assign(cardinality, 0.0);
    for (int r : rows) {
      int value = data.Value(r, attribute);
      child_gradient[value] += gradient[r];
      child_hessian[value] += hessian[r];
    }
    double score = 0.0;
    int non_empty = 0;
    for (int v = 0; v < cardinality; ++v) {
      if (child_hessian[v] <= 0.0 && child_gradient[v] == 0.0) continue;
      ++non_empty;
      score += child_gradient[v] * child_gradient[v] /
               (child_hessian[v] + 1.0);
    }
    if (non_empty < 2) continue;
    double gain = score - parent_score;
    if (gain > best_gain) {
      best_gain = gain;
      best_attribute = attribute;
    }
  }
  if (best_attribute < 0) return node_index;

  int cardinality = data.schema().attribute(best_attribute).Cardinality();
  std::vector<std::vector<int>> partitions(cardinality);
  for (int r : rows) partitions[data.Value(r, best_attribute)].push_back(r);

  tree->nodes[node_index].attribute = best_attribute;
  tree->nodes[node_index].children.assign(cardinality, -1);
  for (int v = 0; v < cardinality; ++v) {
    if (partitions[v].empty()) continue;
    int child =
        BuildNode(data, partitions[v], gradient, hessian, depth + 1, tree);
    tree->nodes[node_index].children[v] = child;
  }
  return node_index;
}

double GradientBoosting::TreeValue(const Tree& tree, const Dataset& data,
                                   int row) const {
  int node = 0;
  while (tree.nodes[node].attribute >= 0) {
    int value = data.Value(row, tree.nodes[node].attribute);
    int child = tree.nodes[node].children[value];
    if (child < 0) break;  // value unseen at this node during training
    node = child;
  }
  return tree.nodes[node].value;
}

void GradientBoosting::Fit(const Dataset& train) {
  REMEDY_CHECK(train.NumRows() > 0);
  trees_.clear();

  const int n = train.NumRows();
  double positive_weight = 0.0, total_weight = 0.0;
  for (int r = 0; r < n; ++r) {
    total_weight += train.Weight(r);
    if (train.Label(r)) positive_weight += train.Weight(r);
  }
  REMEDY_CHECK(total_weight > 0.0);
  double prior = std::clamp(positive_weight / total_weight, 1e-6, 1 - 1e-6);
  base_logit_ = std::log(prior / (1.0 - prior));

  std::vector<double> logit(n, base_logit_);
  std::vector<double> gradient(n), hessian(n);
  std::vector<int> all_rows(n);
  std::iota(all_rows.begin(), all_rows.end(), 0);

  for (int round = 0; round < params_.rounds; ++round) {
    for (int r = 0; r < n; ++r) {
      double p = Sigmoid(logit[r]);
      double w = train.Weight(r);
      gradient[r] = w * (train.Label(r) - p);
      hessian[r] = w * p * (1.0 - p);
    }
    Tree tree;
    BuildNode(train, all_rows, gradient, hessian, 0, &tree);
    for (int r = 0; r < n; ++r) {
      logit[r] += params_.learning_rate * TreeValue(tree, train, r);
    }
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
}

double GradientBoosting::PredictProba(const Dataset& data, int row) const {
  REMEDY_CHECK(fitted_) << "GradientBoosting::Fit has not been called";
  double logit = base_logit_;
  for (const Tree& tree : trees_) {
    logit += params_.learning_rate * TreeValue(tree, data, row);
  }
  return Sigmoid(logit);
}

}  // namespace remedy
