#ifndef REMEDY_ML_RANDOM_FOREST_H_
#define REMEDY_ML_RANDOM_FOREST_H_

#include <vector>

#include "ml/classifier.h"
#include "ml/decision_tree.h"

namespace remedy {

struct RandomForestParams {
  int num_trees = 20;
  DecisionTreeParams tree;  // tree.max_features 0 = auto (sqrt of #attrs)
  uint64_t seed = 11;
  // Workers for parallel bagging: 1 = serial, <= 0 = every usable CPU.
  // Bit-identical for every value — tree t draws its bootstrap and tree
  // seed from its own StreamSeed(seed, t) stream and lands in slot t, so
  // neither the samples nor the ensemble order depend on scheduling.
  int threads = 1;
};

// Bagged ensemble of multiway CART trees with per-node feature subsampling.
// Bootstrap sampling respects instance weights (rows are drawn with
// probability proportional to weight), so the reweighting baselines carry
// through to the forest.
class RandomForest : public Classifier {
 public:
  explicit RandomForest(RandomForestParams params = {});

  void Fit(const Dataset& train) override;
  double PredictProba(const Dataset& data, int row) const override;

  int NumTrees() const { return static_cast<int>(trees_.size()); }

 private:
  RandomForestParams params_;
  std::vector<DecisionTree> trees_;
};

}  // namespace remedy

#endif  // REMEDY_ML_RANDOM_FOREST_H_
