#include "ml/decision_tree.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace remedy {
namespace {

double Gini(double positive_weight, double total_weight) {
  if (total_weight <= 0.0) return 0.0;
  double p = positive_weight / total_weight;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

DecisionTree::DecisionTree(DecisionTreeParams params)
    : params_(params) {
  REMEDY_CHECK(params_.max_depth >= 0);
  REMEDY_CHECK(params_.min_samples_split >= 0.0);
}

void DecisionTree::Fit(const Dataset& train) {
  REMEDY_CHECK(train.NumRows() > 0);
  nodes_.clear();
  depth_ = 0;
  std::vector<int> rows(train.NumRows());
  std::iota(rows.begin(), rows.end(), 0);
  std::vector<char> used_attributes(train.NumColumns(), 0);
  Rng rng(params_.seed);
  BuildNode(train, rows, 0, used_attributes, rng);
}

int DecisionTree::BuildNode(const Dataset& data, const std::vector<int>& rows,
                            int depth, std::vector<char>& used_attributes,
                            Rng& rng) {
  depth_ = std::max(depth_, depth);

  double total_weight = 0.0;
  double positive_weight = 0.0;
  for (int r : rows) {
    total_weight += data.Weight(r);
    positive_weight += data.Label(r) ? data.Weight(r) : 0.0;
  }

  int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_index].positive_fraction =
      total_weight > 0.0 ? positive_weight / total_weight : 0.5;

  const bool pure = positive_weight <= 0.0 || positive_weight >= total_weight;
  if (depth >= params_.max_depth || pure ||
      total_weight < params_.min_samples_split) {
    return node_index;
  }

  // Candidate attributes: unused on this path, optionally subsampled.
  std::vector<int> candidates;
  for (int c = 0; c < data.NumColumns(); ++c) {
    if (!used_attributes[c]) candidates.push_back(c);
  }
  if (params_.max_features > 0 &&
      static_cast<int>(candidates.size()) > params_.max_features) {
    std::vector<int> picked = rng.SampleWithoutReplacement(
        static_cast<int>(candidates.size()), params_.max_features);
    std::sort(picked.begin(), picked.end());
    std::vector<int> subset;
    subset.reserve(picked.size());
    for (int index : picked) subset.push_back(candidates[index]);
    candidates = std::move(subset);
  }
  if (candidates.empty()) return node_index;

  const double parent_impurity = Gini(positive_weight, total_weight);
  int best_attribute = -1;
  double best_gain = params_.min_gain;
  std::vector<double> value_weight, value_positive;
  for (int attribute : candidates) {
    int cardinality = data.schema().attribute(attribute).Cardinality();
    if (cardinality < 2) continue;
    value_weight.assign(cardinality, 0.0);
    value_positive.assign(cardinality, 0.0);
    for (int r : rows) {
      int value = data.Value(r, attribute);
      double w = data.Weight(r);
      value_weight[value] += w;
      if (data.Label(r)) value_positive[value] += w;
    }
    double weighted_child_impurity = 0.0;
    int non_empty = 0;
    for (int v = 0; v < cardinality; ++v) {
      if (value_weight[v] <= 0.0) continue;
      ++non_empty;
      weighted_child_impurity +=
          (value_weight[v] / total_weight) * Gini(value_positive[v],
                                                  value_weight[v]);
    }
    if (non_empty < 2) continue;  // split would not partition anything
    double gain = parent_impurity - weighted_child_impurity;
    if (gain > best_gain) {
      best_gain = gain;
      best_attribute = attribute;
    }
  }
  if (best_attribute < 0) return node_index;

  // Partition rows by the chosen attribute's value.
  int cardinality = data.schema().attribute(best_attribute).Cardinality();
  std::vector<std::vector<int>> partitions(cardinality);
  for (int r : rows) partitions[data.Value(r, best_attribute)].push_back(r);

  nodes_[node_index].attribute = best_attribute;
  nodes_[node_index].children.assign(cardinality, -1);
  used_attributes[best_attribute] = 1;
  for (int v = 0; v < cardinality; ++v) {
    if (partitions[v].empty()) continue;
    int child =
        BuildNode(data, partitions[v], depth + 1, used_attributes, rng);
    // nodes_ may have reallocated during recursion; index again.
    nodes_[node_index].children[v] = child;
  }
  used_attributes[best_attribute] = 0;
  return node_index;
}

double DecisionTree::PredictProba(const Dataset& data, int row) const {
  REMEDY_CHECK(!nodes_.empty()) << "DecisionTree::Fit has not been called";
  int node = 0;
  while (nodes_[node].attribute >= 0) {
    int value = data.Value(row, nodes_[node].attribute);
    int child = (value >= 0 &&
                 value < static_cast<int>(nodes_[node].children.size()))
                    ? nodes_[node].children[value]
                    : -1;
    if (child < 0) break;  // unseen value: back off to this node's estimate
    node = child;
  }
  return nodes_[node].positive_fraction;
}

}  // namespace remedy
