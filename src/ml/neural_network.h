#ifndef REMEDY_ML_NEURAL_NETWORK_H_
#define REMEDY_ML_NEURAL_NETWORK_H_

#include <memory>
#include <vector>

#include "data/encoding.h"
#include "ml/classifier.h"

namespace remedy {

struct NeuralNetworkParams {
  int hidden_units = 16;
  double learning_rate = 0.05;
  double l2 = 1e-5;
  int epochs = 20;
  int batch_size = 64;
  uint64_t seed = 13;
};

// One-hidden-layer MLP (ReLU hidden, sigmoid output) over one-hot-encoded
// features, trained by mini-batch SGD on weighted log-loss.
class NeuralNetwork : public Classifier {
 public:
  explicit NeuralNetwork(NeuralNetworkParams params = {});

  void Fit(const Dataset& train) override;
  double PredictProba(const Dataset& data, int row) const override;

 private:
  // Forward pass for one sparse row (active one-hot index per attribute);
  // fills the hidden activations and returns the output probability.
  double Forward(const int* active, int num_columns,
                 std::vector<double>* hidden) const;

  NeuralNetworkParams params_;
  std::unique_ptr<OneHotEncoder> encoder_;
  int input_width_ = 0;
  // hidden_weights_[h * input_width_ + j], hidden_bias_[h],
  // output_weights_[h], output_bias_.
  std::vector<double> hidden_weights_;
  std::vector<double> hidden_bias_;
  std::vector<double> output_weights_;
  double output_bias_ = 0.0;
};

}  // namespace remedy

#endif  // REMEDY_ML_NEURAL_NETWORK_H_
