#ifndef REMEDY_ML_NEURAL_NETWORK_H_
#define REMEDY_ML_NEURAL_NETWORK_H_

#include <memory>
#include <vector>

#include "data/encoding.h"
#include "ml/classifier.h"

namespace remedy {

struct NeuralNetworkParams {
  int hidden_units = 16;
  double learning_rate = 0.05;
  double l2 = 1e-5;
  int epochs = 20;
  int batch_size = 64;
  uint64_t seed = 13;
  // Workers for the per-batch gradient accumulation: 1 = serial, <= 0 =
  // every usable CPU. Bit-identical for every value — each batch is split
  // into fixed 64-row sub-blocks whose gradients (taken at batch-start
  // weights) are applied in sub-block order. Parallelism only materializes
  // when batch_size spans several sub-blocks.
  int threads = 1;
};

// One-hidden-layer MLP (leaky-ReLU hidden, sigmoid output) over
// one-hot-encoded features, trained by mini-batch gradient descent on
// weighted log-loss: each shuffled batch accumulates its gradient at the
// batch-start weights and applies it once.
class NeuralNetwork : public Classifier {
 public:
  explicit NeuralNetwork(NeuralNetworkParams params = {});

  void Fit(const Dataset& train) override;
  void FitEncoded(const EncodedMatrix& train) override;
  double PredictProba(const Dataset& data, int row) const override;
  std::vector<double> PredictProbaAllEncoded(
      const EncodedMatrix& data) const override;

 private:
  // Forward pass for one sparse row (active one-hot index per attribute);
  // fills the hidden activations and returns the output probability.
  double Forward(const int* active, int num_columns,
                 std::vector<double>* hidden) const;

  NeuralNetworkParams params_;
  std::unique_ptr<OneHotEncoder> encoder_;
  int input_width_ = 0;
  // hidden_weights_[h * input_width_ + j], hidden_bias_[h],
  // output_weights_[h], output_bias_.
  std::vector<double> hidden_weights_;
  std::vector<double> hidden_bias_;
  std::vector<double> output_weights_;
  double output_bias_ = 0.0;
};

}  // namespace remedy

#endif  // REMEDY_ML_NEURAL_NETWORK_H_
