#ifndef REMEDY_FAIRNESS_FAIRNESS_VIOLATION_H_
#define REMEDY_FAIRNESS_FAIRNESS_VIOLATION_H_

#include <vector>

#include "fairness/divergence.h"

namespace remedy {

// GerryFair's subgroup-fairness metric (Sec. V-B4): the violation of a group
// g is its divergence weighted by its size, Pr[g] * |gamma_g - gamma_D|; the
// dataset-level violation is the maximum over all subgroups. Used for the
// Table III comparison so the in-processing baseline is judged by its own
// yardstick.
struct FairnessViolation {
  Pattern worst_pattern;
  double violation = 0.0;
  double worst_divergence = 0.0;
  double worst_support = 0.0;
};

FairnessViolation ComputeFairnessViolation(
    const Dataset& test, const std::vector<int>& predictions,
    Statistic statistic, int64_t min_size = 10);

}  // namespace remedy

#endif  // REMEDY_FAIRNESS_FAIRNESS_VIOLATION_H_
