#ifndef REMEDY_FAIRNESS_FAIRNESS_INDEX_H_
#define REMEDY_FAIRNESS_FAIRNESS_INDEX_H_

#include <vector>

#include "fairness/divergence.h"

namespace remedy {

// The paper's Fairness Index (Sec. V-A/d): the weighted sum of the
// divergences of every significant unfair subgroup with support over
// `min_support`. Lower is fairer; 0 means no significant unfair subgroup.
struct FairnessIndexOptions {
  double min_support = 0.1;
  double alpha = 0.05;  // t-test significance level
  // "The fairness index represents the weighted sum of the divergence";
  // weights are the subgroup supports. Disable for a plain sum.
  bool weight_by_support = true;
};

double FairnessIndex(const SubgroupAnalysis& analysis,
                     const FairnessIndexOptions& options = {});

// Convenience: analyze + index in one call.
double ComputeFairnessIndex(const Dataset& test,
                            const std::vector<int>& predictions,
                            Statistic statistic,
                            const FairnessIndexOptions& options = {});

// View form over a row multiset (see AnalyzeSubgroupsView): the index of
// the resample `rows` of `test`, with `predictions` indexed by original
// test row. Bitwise identical to materializing the resample first.
double ComputeFairnessIndexView(const Dataset& test,
                                const std::vector<int>& rows,
                                const std::vector<int>& predictions,
                                Statistic statistic,
                                const FairnessIndexOptions& options = {});

}  // namespace remedy

#endif  // REMEDY_FAIRNESS_FAIRNESS_INDEX_H_
