#ifndef REMEDY_FAIRNESS_BOOTSTRAP_H_
#define REMEDY_FAIRNESS_BOOTSTRAP_H_

#include <cstdint>

#include "fairness/divergence.h"
#include "fairness/fairness_index.h"

namespace remedy {

// Nonparametric bootstrap confidence interval for the fairness index: the
// test set is resampled with replacement, the index recomputed per
// replicate, and the percentile interval reported. Complements the per-
// subgroup t-tests with an uncertainty estimate for the dataset-level
// metric the paper's figures plot.

struct BootstrapInterval {
  double point = 0.0;  // index on the original sample
  double lower = 0.0;  // percentile bound
  double upper = 0.0;
  int replicates = 0;
};

struct BootstrapOptions {
  int replicates = 200;
  double confidence = 0.95;  // central interval mass
  uint64_t seed = 61;
  // Workers for the replicate loop: 1 = serial, <= 0 = every usable CPU.
  // Bit-identical for every value — replicate b resamples from its own
  // StreamSeed(seed, b) stream and writes only slot b, so the sorted
  // replicate indices never depend on scheduling.
  int threads = 0;
  FairnessIndexOptions index;
};

// Linearly interpolated percentile of an ascending-sorted sample: the
// order statistic at fractional rank q * (size - 1). Exposed for the
// bootstrap interval tests.
double PercentileFromSorted(const std::vector<double>& sorted, double q);

BootstrapInterval BootstrapFairnessIndex(
    const Dataset& test, const std::vector<int>& predictions,
    Statistic statistic, const BootstrapOptions& options = {});

}  // namespace remedy

#endif  // REMEDY_FAIRNESS_BOOTSTRAP_H_
