#ifndef REMEDY_FAIRNESS_DIVERGENCE_H_
#define REMEDY_FAIRNESS_DIVERGENCE_H_

#include <string>
#include <vector>

#include "core/pattern.h"
#include "data/dataset.h"

namespace remedy {

// Model statistics gamma supported by the subgroup-fairness notions.
//
// The paper's evaluation uses FPR (equalized-opportunity style) and FNR
// (equalized-odds style); Sec. VI additionally discusses statistical parity
// (P[h(x)=1], which ignores the true labels) and accuracy-based measures
// such as the error rate — the latter are sensitive to train/test
// distribution differences after a remedy, which is exactly the caveat the
// paper raises and the ablation bench demonstrates.
enum class Statistic {
  kFpr,               // Pr[h(x)=1 | y=0]
  kFnr,               // Pr[h(x)=0 | y=1]
  kStatisticalParity, // Pr[h(x)=1]
  kErrorRate,         // Pr[h(x) != y]
};

std::string StatisticName(Statistic statistic);

// One subgroup's behaviour under a statistic, in the sense of DivExplorer:
// gamma_g, its divergence from gamma_D, and the significance of that
// divergence (Welch t-test of the error indicator, subgroup vs complement).
struct SubgroupReport {
  Pattern pattern;
  int64_t size = 0;       // |g| in the evaluation set
  double support = 0.0;   // |g| / |D|
  int64_t relevant = 0;   // class-conditional population (y=0 for FPR)
  int64_t errors = 0;     // false positives (FPR) or false negatives (FNR)
  double statistic = 0.0;   // gamma_g
  double divergence = 0.0;  // |gamma_g - gamma_D|
  double p_value = 1.0;
};

struct SubgroupAnalysis {
  Statistic statistic = Statistic::kFpr;
  double overall = 0.0;  // gamma_D
  std::vector<SubgroupReport> subgroups;
};

// Enumerates every intersectional subgroup over the protected attributes
// (all hierarchy levels, leaf to top) with at least `min_size` instances and
// support at least `min_support`, and reports its statistic, divergence and
// significance. This is the library's DivExplorer-equivalent; the paper's
// attribute domains are small enough for exhaustive enumeration to be exact.
SubgroupAnalysis AnalyzeSubgroups(const Dataset& test,
                                  const std::vector<int>& predictions,
                                  Statistic statistic,
                                  double min_support = 0.0,
                                  int64_t min_size = 1);

// View form: analyzes the row multiset `rows` (indices into `test`, repeats
// allowed — e.g. a bootstrap resample) without materializing a resampled
// Dataset. `predictions` stays indexed by original test row. Bitwise
// identical to AnalyzeSubgroups(test.Select(rows), predictions gathered
// through `rows`, ...): every tally is an integer count, so the evaluation
// order cannot perturb the statistics.
SubgroupAnalysis AnalyzeSubgroupsView(const Dataset& test,
                                      const std::vector<int>& rows,
                                      const std::vector<int>& predictions,
                                      Statistic statistic,
                                      double min_support = 0.0,
                                      int64_t min_size = 1);

// Subgroups that violate tau_d-fairness (Def. 1) at significance `alpha`,
// sorted by descending divergence.
std::vector<SubgroupReport> FilterUnfair(const SubgroupAnalysis& analysis,
                                         double discrimination_threshold,
                                         double alpha = 0.05);

}  // namespace remedy

#endif  // REMEDY_FAIRNESS_DIVERGENCE_H_
