#include "fairness/significance.h"

#include <cmath>

#include "common/check.h"

namespace remedy {
namespace {

// glibc's lgamma writes the process-global `signgam`, which is a data race
// when p-values are computed from concurrent bootstrap replicates; the
// reentrant variant reports the sign through an out-parameter instead.
double LogGamma(double x) {
#if defined(__GLIBC__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

// Continued-fraction kernel of the incomplete beta function
// (Numerical Recipes, betacf). Converges in ~50 iterations for the
// arguments produced by t-distributions.
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 200;
  constexpr double kEpsilon = 3e-12;
  constexpr double kFpMin = 1e-300;

  double qab = a + b;
  double qap = a + 1.0;
  double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double IncompleteBeta(double a, double b, double x) {
  REMEDY_CHECK(a > 0.0 && b > 0.0);
  REMEDY_CHECK(x >= 0.0 && x <= 1.0) << "x = " << x;
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  double log_beta = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                    a * std::log(x) + b * std::log(1.0 - x);
  double front = std::exp(log_beta);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTTwoSidedPValue(double t, double df) {
  if (df <= 0.0 || !std::isfinite(t)) return 1.0;
  // P(|T| > t) = I_{df / (df + t^2)}(df/2, 1/2)
  double x = df / (df + t * t);
  return IncompleteBeta(df / 2.0, 0.5, x);
}

TTestResult WelchTTest(double mean1, double variance1, int64_t n1,
                       double mean2, double variance2, int64_t n2) {
  TTestResult result;
  if (n1 < 2 || n2 < 2) return result;  // not enough evidence: p = 1
  double se1 = variance1 / static_cast<double>(n1);
  double se2 = variance2 / static_cast<double>(n2);
  double se = se1 + se2;
  if (se <= 0.0) {
    // Degenerate (constant) samples: identical means are not significant,
    // different means are trivially so.
    result.p_value = (mean1 == mean2) ? 1.0 : 0.0;
    return result;
  }
  result.t = (mean1 - mean2) / std::sqrt(se);
  double df_numerator = se * se;
  double df_denominator =
      se1 * se1 / static_cast<double>(n1 - 1) +
      se2 * se2 / static_cast<double>(n2 - 1);
  result.degrees_of_freedom =
      df_denominator > 0.0 ? df_numerator / df_denominator : 0.0;
  result.p_value = StudentTTwoSidedPValue(result.t,
                                          result.degrees_of_freedom);
  return result;
}

TTestResult WelchTTestBernoulli(int64_t successes1, int64_t n1,
                                int64_t successes2, int64_t n2) {
  auto sample_stats = [](int64_t successes, int64_t n, double* mean,
                         double* variance) {
    *mean = n > 0 ? static_cast<double>(successes) / n : 0.0;
    // Sample variance of 0/1 data: n p (1-p) / (n - 1).
    *variance = n > 1 ? (*mean) * (1.0 - *mean) * n / (n - 1.0) : 0.0;
  };
  double mean1, var1, mean2, var2;
  sample_stats(successes1, n1, &mean1, &var1);
  sample_stats(successes2, n2, &mean2, &var2);
  return WelchTTest(mean1, var1, n1, mean2, var2, n2);
}

}  // namespace remedy
