#include "fairness/bootstrap.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace remedy {

BootstrapInterval BootstrapFairnessIndex(
    const Dataset& test, const std::vector<int>& predictions,
    Statistic statistic, const BootstrapOptions& options) {
  REMEDY_CHECK(static_cast<int>(predictions.size()) == test.NumRows());
  REMEDY_CHECK(options.replicates >= 10);
  REMEDY_CHECK(options.confidence > 0.0 && options.confidence < 1.0);

  BootstrapInterval interval;
  interval.replicates = options.replicates;
  interval.point =
      ComputeFairnessIndex(test, predictions, statistic, options.index);

  const int n = test.NumRows();
  Rng rng(options.seed);
  std::vector<double> indices;
  indices.reserve(options.replicates);
  std::vector<int> rows(n);
  std::vector<int> resampled_predictions(n);
  for (int b = 0; b < options.replicates; ++b) {
    for (int i = 0; i < n; ++i) rows[i] = rng.UniformInt(n);
    Dataset resample = test.Select(rows);
    for (int i = 0; i < n; ++i) {
      resampled_predictions[i] = predictions[rows[i]];
    }
    indices.push_back(ComputeFairnessIndex(resample, resampled_predictions,
                                           statistic, options.index));
  }
  std::sort(indices.begin(), indices.end());
  double tail = (1.0 - options.confidence) / 2.0;
  auto rank = [&](double q) {
    int index = static_cast<int>(q * (options.replicates - 1));
    return indices[std::clamp(index, 0, options.replicates - 1)];
  };
  interval.lower = rank(tail);
  interval.upper = rank(1.0 - tail);
  return interval;
}

}  // namespace remedy
