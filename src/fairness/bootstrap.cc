#include "fairness/bootstrap.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/pipeline_metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace remedy {

double PercentileFromSorted(const std::vector<double>& sorted, double q) {
  REMEDY_CHECK(!sorted.empty());
  REMEDY_CHECK(q >= 0.0 && q <= 1.0);
  const int last = static_cast<int>(sorted.size()) - 1;
  const double position = q * last;
  const int lo = std::clamp(static_cast<int>(std::floor(position)), 0, last);
  const int hi = std::min(lo + 1, last);
  const double fraction = position - lo;
  return sorted[lo] + fraction * (sorted[hi] - sorted[lo]);
}

BootstrapInterval BootstrapFairnessIndex(
    const Dataset& test, const std::vector<int>& predictions,
    Statistic statistic, const BootstrapOptions& options) {
  REMEDY_TRACE_SPAN("fairness/bootstrap");
  REMEDY_CHECK(static_cast<int>(predictions.size()) == test.NumRows());
  REMEDY_CHECK(options.replicates >= 10);
  REMEDY_CHECK(options.confidence > 0.0 && options.confidence < 1.0);

  BootstrapInterval interval;
  interval.replicates = options.replicates;
  interval.point =
      ComputeFairnessIndex(test, predictions, statistic, options.index);

  const int n = test.NumRows();
  std::vector<double> indices(options.replicates);
  // Replicate b draws its resample from its own keyed stream and evaluates
  // it as an index view over the original test set — no per-replicate
  // Dataset copy, no shared RNG.
  const auto run_replicate = [&](int64_t b) {
    Rng rng(StreamSeed(options.seed, static_cast<uint64_t>(b)));
    std::vector<int> rows(n);
    for (int i = 0; i < n; ++i) rows[i] = rng.UniformInt(n);
    indices[b] = ComputeFairnessIndexView(test, rows, predictions, statistic,
                                          options.index);
  };
  const int threads =
      std::min(ResolveThreadCount(options.threads), options.replicates);
  if (threads > 1) {
    ThreadPool pool(threads);
    Status status = pool.ParallelFor(options.replicates, run_replicate);
    REMEDY_CHECK(status.ok()) << status.message();
  } else {
    for (int b = 0; b < options.replicates; ++b) run_replicate(b);
  }
  PipelineMetrics::Get().fairness_bootstrap_replicates->Increment(
      options.replicates);

  std::sort(indices.begin(), indices.end());
  double tail = (1.0 - options.confidence) / 2.0;
  interval.lower = PercentileFromSorted(indices, tail);
  interval.upper = PercentileFromSorted(indices, 1.0 - tail);
  return interval;
}

}  // namespace remedy
