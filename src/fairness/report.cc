#include "fairness/report.h"

#include <ostream>

#include "common/check.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "fairness/fairness_index.h"
#include "ml/metrics.h"

namespace remedy {

double AuditReport::AlignmentFraction() const {
  size_t total = 0, aligned = 0;
  for (const AuditStatisticSection& section : sections) {
    total += section.unfair.size();
    for (bool hit : section.aligned_with_ibs) aligned += hit;
  }
  return total == 0 ? 1.0 : static_cast<double>(aligned) / total;
}

AuditReport RunAudit(const Dataset& train, const Dataset& test,
                     const std::vector<int>& predictions,
                     const AuditOptions& options) {
  REMEDY_CHECK(static_cast<int>(predictions.size()) == test.NumRows());
  AuditReport report;
  report.test_rows = test.NumRows();
  report.accuracy = Accuracy(test, predictions);

  // The audit contract already REMEDY_CHECKs its inputs; a train set without
  // protected attributes is a programmer error here, so value() (which
  // aborts with the status) keeps the old semantics.
  std::vector<BiasedRegion> ibs = IdentifyIbs(train, options.ibs).value();
  report.ibs_size = ibs.size();

  for (Statistic statistic : options.statistics) {
    AuditStatisticSection section;
    section.statistic = statistic;
    SubgroupAnalysis analysis = AnalyzeSubgroups(
        test, predictions, statistic, options.min_support);
    section.overall = analysis.overall;
    FairnessIndexOptions index_options;
    index_options.alpha = options.alpha;
    section.fairness_index = FairnessIndex(analysis, index_options);
    section.fairness_violation =
        ComputeFairnessViolation(test, predictions, statistic).violation;
    section.unfair = FilterUnfair(analysis, options.discrimination_threshold,
                                  options.alpha);
    if (static_cast<int>(section.unfair.size()) >
        options.max_reported_subgroups) {
      section.unfair.resize(options.max_reported_subgroups);
    }
    section.aligned_with_ibs.reserve(section.unfair.size());
    for (const SubgroupReport& subgroup : section.unfair) {
      section.aligned_with_ibs.push_back(
          DominatesAnyBiasedRegion(subgroup.pattern, ibs));
    }
    report.sections.push_back(std::move(section));
  }
  return report;
}

void PrintAuditReport(const AuditReport& report, const DataSchema& schema,
                      std::ostream& out) {
  out << "Fairness audit over " << report.test_rows
      << " test rows (accuracy " << FormatDouble(report.accuracy, 4)
      << "); training-data IBS holds " << report.ibs_size << " regions.\n";
  for (const AuditStatisticSection& section : report.sections) {
    out << "\n[" << StatisticName(section.statistic) << "] overall "
        << FormatDouble(section.overall, 4) << ", fairness index "
        << FormatDouble(section.fairness_index, 4) << ", fairness violation "
        << FormatDouble(section.fairness_violation, 4) << "\n";
    if (section.unfair.empty()) {
      out << "  no significant unfair subgroups\n";
      continue;
    }
    TablePrinter table({"subgroup", "stat", "divergence", "support",
                        "p-value", "IBS-aligned"});
    for (size_t i = 0; i < section.unfair.size(); ++i) {
      const SubgroupReport& subgroup = section.unfair[i];
      table.AddRow({subgroup.pattern.ToString(schema),
                    FormatDouble(subgroup.statistic, 3),
                    FormatDouble(subgroup.divergence, 3),
                    FormatDouble(subgroup.support, 3),
                    FormatDouble(subgroup.p_value, 4),
                    section.aligned_with_ibs[i] ? "yes" : "no"});
    }
    table.Print(out);
  }
  out << "\nIBS alignment of unfair subgroups: "
      << FormatDouble(100.0 * report.AlignmentFraction(), 1) << "%\n";
}

}  // namespace remedy
