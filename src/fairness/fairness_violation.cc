#include "fairness/fairness_violation.h"

namespace remedy {

FairnessViolation ComputeFairnessViolation(
    const Dataset& test, const std::vector<int>& predictions,
    Statistic statistic, int64_t min_size) {
  SubgroupAnalysis analysis =
      AnalyzeSubgroups(test, predictions, statistic, /*min_support=*/0.0,
                       min_size);
  FairnessViolation result;
  for (const SubgroupReport& report : analysis.subgroups) {
    double violation = report.support * report.divergence;
    if (violation > result.violation) {
      result.violation = violation;
      result.worst_pattern = report.pattern;
      result.worst_divergence = report.divergence;
      result.worst_support = report.support;
    }
  }
  return result;
}

}  // namespace remedy
