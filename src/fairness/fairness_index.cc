#include "fairness/fairness_index.h"

namespace remedy {

double FairnessIndex(const SubgroupAnalysis& analysis,
                     const FairnessIndexOptions& options) {
  double index = 0.0;
  for (const SubgroupReport& report : analysis.subgroups) {
    if (report.support < options.min_support) continue;
    if (report.p_value >= options.alpha) continue;
    double weight = options.weight_by_support ? report.support : 1.0;
    index += weight * report.divergence;
  }
  return index;
}

double ComputeFairnessIndex(const Dataset& test,
                            const std::vector<int>& predictions,
                            Statistic statistic,
                            const FairnessIndexOptions& options) {
  SubgroupAnalysis analysis =
      AnalyzeSubgroups(test, predictions, statistic, options.min_support);
  return FairnessIndex(analysis, options);
}

double ComputeFairnessIndexView(const Dataset& test,
                                const std::vector<int>& rows,
                                const std::vector<int>& predictions,
                                Statistic statistic,
                                const FairnessIndexOptions& options) {
  SubgroupAnalysis analysis = AnalyzeSubgroupsView(test, rows, predictions,
                                                   statistic,
                                                   options.min_support);
  return FairnessIndex(analysis, options);
}

}  // namespace remedy
