#ifndef REMEDY_FAIRNESS_SIGNIFICANCE_H_
#define REMEDY_FAIRNESS_SIGNIFICANCE_H_

#include <cstdint>

namespace remedy {

// Welch's unequal-variance t-test, used (as in DivExplorer) to decide
// whether a subgroup's statistic diverges significantly from the rest of the
// dataset before it contributes to the fairness index.

struct TTestResult {
  double t = 0.0;
  double degrees_of_freedom = 0.0;
  double p_value = 1.0;  // two-sided
};

// Welch t-test from summary statistics (sample means, *sample* variances
// with n-1 denominators, and sizes). Returns p = 1 when either sample is too
// small (n < 2) or both variances vanish with equal means.
TTestResult WelchTTest(double mean1, double variance1, int64_t n1,
                       double mean2, double variance2, int64_t n2);

// Convenience for Bernoulli samples (success counts): the subgroup-level
// FPR/FNR statistics are means of 0/1 indicators.
TTestResult WelchTTestBernoulli(int64_t successes1, int64_t n1,
                                int64_t successes2, int64_t n2);

// Regularized incomplete beta function I_x(a, b), exposed for testing.
// Continued-fraction evaluation (Numerical Recipes betacf/betai).
double IncompleteBeta(double a, double b, double x);

// Two-sided p-value of a t statistic with `df` degrees of freedom.
double StudentTTwoSidedPValue(double t, double df);

}  // namespace remedy

#endif  // REMEDY_FAIRNESS_SIGNIFICANCE_H_
