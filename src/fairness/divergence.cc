#include "fairness/divergence.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "core/hierarchy.h"
#include "fairness/significance.h"

namespace remedy {
namespace {

struct GroupTally {
  int64_t size = 0;      // all rows in the subgroup
  int64_t relevant = 0;  // rows in the statistic's conditioning class
  int64_t errors = 0;    // misclassified relevant rows
};

}  // namespace

std::string StatisticName(Statistic statistic) {
  switch (statistic) {
    case Statistic::kFpr:
      return "FPR";
    case Statistic::kFnr:
      return "FNR";
    case Statistic::kStatisticalParity:
      return "SP";
    case Statistic::kErrorRate:
      return "ER";
  }
  REMEDY_CHECK(false) << "unknown statistic";
  return "";
}

namespace {

// Shared core of the dataset and view forms. `view` == nullptr analyzes
// every row of `test` in order; otherwise position i stands for test row
// (*view)[i]. `predictions` is always indexed by original test row.
SubgroupAnalysis AnalyzeImpl(const Dataset& test,
                             const std::vector<int>* view,
                             const std::vector<int>& predictions,
                             Statistic statistic, double min_support,
                             int64_t min_size) {
  REMEDY_CHECK(static_cast<int>(predictions.size()) == test.NumRows());
  REMEDY_CHECK(test.schema().NumProtected() > 0);

  SubgroupAnalysis analysis;
  analysis.statistic = statistic;

  // Per-position relevance/error indicators for the chosen statistic.
  const int n = view ? static_cast<int>(view->size()) : test.NumRows();
  std::vector<char> relevant(n), error(n);
  int64_t total_relevant = 0, total_errors = 0;
  for (int i = 0; i < n; ++i) {
    const int r = view ? (*view)[i] : i;
    bool in_class = false;
    bool event = false;
    switch (statistic) {
      case Statistic::kFpr:
        in_class = test.Label(r) == 0;
        event = in_class && predictions[r] == 1;
        break;
      case Statistic::kFnr:
        in_class = test.Label(r) == 1;
        event = in_class && predictions[r] == 0;
        break;
      case Statistic::kStatisticalParity:
        in_class = true;
        event = predictions[r] == 1;
        break;
      case Statistic::kErrorRate:
        in_class = true;
        event = predictions[r] != test.Label(r);
        break;
    }
    relevant[i] = in_class;
    error[i] = event;
    total_relevant += in_class;
    total_errors += event;
  }
  analysis.overall = total_relevant > 0
                         ? static_cast<double>(total_errors) / total_relevant
                         : 0.0;

  Hierarchy hierarchy(test);
  const RegionCounter& counter = hierarchy.counter();
  for (uint32_t mask : hierarchy.BottomUpMasks()) {
    // Tally every subgroup of this node in one pass.
    std::unordered_map<uint64_t, GroupTally> tallies;
    for (int i = 0; i < n; ++i) {
      const int r = view ? (*view)[i] : i;
      GroupTally& tally = tallies[counter.RowKey(test, r, mask)];
      ++tally.size;
      tally.relevant += relevant[i];
      tally.errors += error[i];
    }

    std::vector<uint64_t> keys;
    keys.reserve(tallies.size());
    for (const auto& [key, tally] : tallies) keys.push_back(key);
    std::sort(keys.begin(), keys.end());

    for (uint64_t key : keys) {
      const GroupTally& tally = tallies.at(key);
      if (tally.size < min_size) continue;
      double support = static_cast<double>(tally.size) / n;
      if (support < min_support) continue;
      if (tally.relevant == 0) continue;  // statistic undefined for group

      SubgroupReport report;
      report.pattern = counter.PatternFor(key, mask);
      report.size = tally.size;
      report.support = support;
      report.relevant = tally.relevant;
      report.errors = tally.errors;
      report.statistic =
          static_cast<double>(tally.errors) / tally.relevant;
      report.divergence = std::fabs(report.statistic - analysis.overall);
      report.p_value =
          WelchTTestBernoulli(tally.errors, tally.relevant,
                              total_errors - tally.errors,
                              total_relevant - tally.relevant)
              .p_value;
      analysis.subgroups.push_back(std::move(report));
    }
  }
  return analysis;
}

}  // namespace

SubgroupAnalysis AnalyzeSubgroups(const Dataset& test,
                                  const std::vector<int>& predictions,
                                  Statistic statistic, double min_support,
                                  int64_t min_size) {
  return AnalyzeImpl(test, nullptr, predictions, statistic, min_support,
                     min_size);
}

SubgroupAnalysis AnalyzeSubgroupsView(const Dataset& test,
                                      const std::vector<int>& rows,
                                      const std::vector<int>& predictions,
                                      Statistic statistic, double min_support,
                                      int64_t min_size) {
  for (int row : rows) {
    REMEDY_DCHECK(row >= 0 && row < test.NumRows());
    (void)row;
  }
  return AnalyzeImpl(test, &rows, predictions, statistic, min_support,
                     min_size);
}

std::vector<SubgroupReport> FilterUnfair(const SubgroupAnalysis& analysis,
                                         double discrimination_threshold,
                                         double alpha) {
  std::vector<SubgroupReport> unfair;
  for (const SubgroupReport& report : analysis.subgroups) {
    if (report.divergence > discrimination_threshold &&
        report.p_value < alpha) {
      unfair.push_back(report);
    }
  }
  std::sort(unfair.begin(), unfair.end(),
            [](const SubgroupReport& a, const SubgroupReport& b) {
              if (a.divergence != b.divergence) {
                return a.divergence > b.divergence;
              }
              return a.pattern < b.pattern;
            });
  return unfair;
}

}  // namespace remedy
