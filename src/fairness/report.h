#ifndef REMEDY_FAIRNESS_REPORT_H_
#define REMEDY_FAIRNESS_REPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/ibs_identify.h"
#include "fairness/divergence.h"
#include "fairness/fairness_violation.h"

namespace remedy {

// One-call fairness audit: evaluates a model's predictions on a test set
// across statistics, connects the unfair subgroups back to the training
// data's Implicit Biased Set, and summarizes everything in a printable
// report. This is the "DivExplorer + IBS" view the paper's Fig. 3 shows.

struct AuditOptions {
  std::vector<Statistic> statistics = {Statistic::kFpr, Statistic::kFnr};
  double discrimination_threshold = 0.1;  // tau_d
  double alpha = 0.05;
  double min_support = 0.05;
  IbsParams ibs;  // identification parameters for the training data
  int max_reported_subgroups = 10;
};

struct AuditStatisticSection {
  Statistic statistic = Statistic::kFpr;
  double overall = 0.0;
  double fairness_index = 0.0;
  double fairness_violation = 0.0;
  std::vector<SubgroupReport> unfair;  // sorted by descending divergence
  // Parallel to `unfair`: does the subgroup coincide with or dominate a
  // region of the training data's IBS?
  std::vector<bool> aligned_with_ibs;
};

struct AuditReport {
  int test_rows = 0;
  double accuracy = 0.0;
  size_t ibs_size = 0;
  std::vector<AuditStatisticSection> sections;

  // Fraction of unfair subgroups (across sections) aligned with the IBS;
  // 1.0 when there are none.
  double AlignmentFraction() const;
};

// Runs the audit. `train` is the (pre-remedy) training data used to fit the
// model; `predictions` are the model's outputs on `test`.
AuditReport RunAudit(const Dataset& train, const Dataset& test,
                     const std::vector<int>& predictions,
                     const AuditOptions& options = {});

// Human-readable rendering of the report.
void PrintAuditReport(const AuditReport& report, const DataSchema& schema,
                      std::ostream& out);

}  // namespace remedy

#endif  // REMEDY_FAIRNESS_REPORT_H_
