// Robustness harness: the headline Fig. 6 numbers (fairness index and
// accuracy before/after the Lattice + preferential-sampling remedy, DT on
// ProPublica) across independent generator seeds and train/test splits,
// reported as mean +/- sample standard deviation. Guards the reproduction
// against single-seed luck.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/remedy.h"
#include "datagen/compas.h"
#include "fairness/fairness_index.h"
#include "ml/metrics.h"
#include "ml/model_factory.h"

namespace remedy {
namespace {

struct Series {
  std::vector<double> values;
  void Add(double value) { values.push_back(value); }
  double Mean() const {
    double sum = 0.0;
    for (double v : values) sum += v;
    return values.empty() ? 0.0 : sum / values.size();
  }
  double Stddev() const {
    if (values.size() < 2) return 0.0;
    double mean = Mean(), sum = 0.0;
    for (double v : values) sum += (v - mean) * (v - mean);
    return std::sqrt(sum / (values.size() - 1));
  }
  std::string Format() const {
    return FormatDouble(Mean(), 4) + " +/- " + FormatDouble(Stddev(), 4);
  }
};

void Run() {
  constexpr int kSeeds = 5;
  Series index_before, index_after, accuracy_before, accuracy_after;
  Series fnr_before, fnr_after;

  for (int seed = 0; seed < kSeeds; ++seed) {
    Dataset data = MakeCompas(6172, 1000 + seed);
    Rng rng(2000 + seed);
    auto [train, test] = data.TrainTestSplit(0.7, rng);

    ClassifierPtr original = MakeClassifier(ModelType::kDecisionTree);
    original->Fit(train);
    std::vector<int> before = original->PredictAll(test);

    RemedyParams params;
    params.ibs.imbalance_threshold = 0.1;
    params.technique = RemedyTechnique::kPreferentialSampling;
    params.seed = 3000 + seed;
    Dataset remedied = RemedyDataset(train, params).value();
    ClassifierPtr treated = MakeClassifier(ModelType::kDecisionTree);
    treated->Fit(remedied);
    std::vector<int> after = treated->PredictAll(test);

    index_before.Add(ComputeFairnessIndex(test, before, Statistic::kFpr));
    index_after.Add(ComputeFairnessIndex(test, after, Statistic::kFpr));
    fnr_before.Add(ComputeFairnessIndex(test, before, Statistic::kFnr));
    fnr_after.Add(ComputeFairnessIndex(test, after, Statistic::kFnr));
    accuracy_before.Add(Accuracy(test, before));
    accuracy_after.Add(Accuracy(test, after));
  }

  TablePrinter table({"metric", "original", "after remedy"});
  table.AddRow({"fairness index (FPR)", index_before.Format(),
                index_after.Format()});
  table.AddRow({"fairness index (FNR)", fnr_before.Format(),
                fnr_after.Format()});
  table.AddRow({"accuracy", accuracy_before.Format(),
                accuracy_after.Format()});
  table.Print(std::cout);
  std::printf(
      "\n%d independent generator seeds and splits; the fairness-index drop "
      "dominates its variance while the accuracy cost stays bounded.\n",
      kSeeds);
}

}  // namespace
}  // namespace remedy

int main() {
  remedy::bench::PrintBanner(
      "Stability — Fig. 6 headline numbers across seeds",
      "robustness companion to Lin, Gupta & Jagadish, ICDE'24, Figure 6",
      "the remedy's fairness gain is consistent across seeds, not a "
      "single-draw artifact.");
  remedy::Run();
  return 0;
}
