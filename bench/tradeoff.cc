#include "tradeoff.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"
#include "core/remedy.h"
#include "data/encoding.h"

namespace remedy::bench {
namespace {

struct Treatment {
  std::string name;
  Dataset train;
  // One evaluation per StandardModels() entry, filled by the cell fan-out.
  std::vector<EvalResult> results;
};

void PrintPanel(const std::string& title,
                const std::vector<const Treatment*>& treatments,
                double EvalResult::*metric) {
  std::printf("%s\n", title.c_str());
  std::vector<std::string> header = {"treatment"};
  for (ModelType type : StandardModels()) header.push_back(ModelName(type));
  TablePrinter table(header);
  for (const Treatment* treatment : treatments) {
    std::vector<std::string> row = {treatment->name};
    for (const EvalResult& result : treatment->results) {
      row.push_back(FormatDouble(result.*metric, 4));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf("\n");
}

Dataset Remedied(const Dataset& train, IbsScope scope,
                 RemedyTechnique technique, double imbalance_threshold,
                 int threads) {
  RemedyParams params;
  params.ibs.imbalance_threshold = imbalance_threshold;
  params.ibs.scope = scope;
  params.technique = technique;
  params.planning_threads = threads;
  return RemedyDataset(train, params).value();
}

}  // namespace

void RunTradeoff(const std::string& dataset_name, const Dataset& data,
                 double imbalance_threshold, const TradeoffOptions& options) {
  REMEDY_TRACE_SPAN("bench/tradeoff");
  WallTimer total_timer;
  auto [train, test] = Split(data);
  const int threads = ResolveThreadCount(options.threads);
  std::printf(
      "dataset=%s  train=%d rows  test=%d rows  tau_c=%.2f  T=1  threads=%d\n\n",
      dataset_name.c_str(), train.NumRows(), test.NumRows(),
      imbalance_threshold, threads);

  // The seven distinct treatments behind the panels. PS under the Lattice
  // scope appears in both the scope and the technique panel, so it is
  // evaluated once here and referenced twice below.
  std::vector<Treatment> treatments;
  treatments.push_back({"Original", train, {}});
  treatments.push_back(
      {"Lattice",
       Remedied(train, IbsScope::kLattice,
                RemedyTechnique::kPreferentialSampling, imbalance_threshold,
                options.threads),
       {}});
  treatments.push_back(
      {"Leaf",
       Remedied(train, IbsScope::kLeaf,
                RemedyTechnique::kPreferentialSampling, imbalance_threshold,
                options.threads),
       {}});
  treatments.push_back(
      {"Top",
       Remedied(train, IbsScope::kTop,
                RemedyTechnique::kPreferentialSampling, imbalance_threshold,
                options.threads),
       {}});
  treatments.push_back(
      {"US",
       Remedied(train, IbsScope::kLattice, RemedyTechnique::kUndersample,
                imbalance_threshold, options.threads),
       {}});
  treatments.push_back(
      {"DP",
       Remedied(train, IbsScope::kLattice, RemedyTechnique::kOversample,
                imbalance_threshold, options.threads),
       {}});
  treatments.push_back(
      {"Massaging",
       Remedied(train, IbsScope::kLattice, RemedyTechnique::kMassaging,
                imbalance_threshold, options.threads),
       {}});

  // Encode every split exactly once; the cells share the caches read-only.
  const EncodedMatrix test_encoded(test);
  std::vector<std::unique_ptr<EncodedMatrix>> train_encoded;
  train_encoded.reserve(treatments.size());
  for (Treatment& treatment : treatments) {
    train_encoded.push_back(std::make_unique<EncodedMatrix>(treatment.train));
    treatment.results.resize(StandardModels().size());
  }

  // Fan the independent (treatment, model) cells out on the pool. Each
  // cell writes only its own slot and trains with inner threads = 1, so
  // the tables are identical to a serial evaluation.
  const std::vector<ModelType> models = StandardModels();
  const int num_cells =
      static_cast<int>(treatments.size() * models.size());
  WallTimer eval_timer;
  const auto evaluate_cell = [&](int64_t cell) {
    const size_t t = static_cast<size_t>(cell) / models.size();
    const size_t m = static_cast<size_t>(cell) % models.size();
    treatments[t].results[m] =
        Evaluate(*train_encoded[t], test_encoded, models[m]);
  };
  if (std::min(threads, num_cells) > 1) {
    ThreadPool pool(std::min(threads, num_cells));
    Status status = pool.ParallelFor(num_cells, evaluate_cell);
    REMEDY_CHECK(status.ok()) << status.message();
  } else {
    for (int cell = 0; cell < num_cells; ++cell) evaluate_cell(cell);
  }
  const double eval_seconds = eval_timer.Nanos() * 1e-9;

  // Panels (a)-(c): identification scopes, remedy = preferential sampling.
  const std::vector<const Treatment*> scopes = {
      &treatments[0], &treatments[1], &treatments[2], &treatments[3]};
  PrintPanel("(a) Fairness index, gamma = FPR (preferential sampling)",
             scopes, &EvalResult::fairness_index_fpr);
  PrintPanel("(b) Fairness index, gamma = FNR (preferential sampling)",
             scopes, &EvalResult::fairness_index_fnr);
  PrintPanel("(c) Model accuracy", scopes, &EvalResult::accuracy);

  // Panel (d): pre-processing techniques under the Lattice scope.
  Treatment ps = treatments[1];
  ps.name = "PS";
  const std::vector<const Treatment*> techniques = {
      &treatments[0], &ps, &treatments[4], &treatments[5], &treatments[6]};
  PrintPanel("(d) Fairness index under FPR, by pre-processing technique",
             techniques, &EvalResult::fairness_index_fpr);
  PrintPanel("(d') Model accuracy, by pre-processing technique", techniques,
             &EvalResult::accuracy);

  const double total_seconds = total_timer.Nanos() * 1e-9;
  std::printf("evaluation cells: %d in %.3fs (total %.3fs, threads=%d)\n",
              num_cells, eval_seconds, total_seconds, threads);

  if (!options.json_path.empty()) {
    JsonResultWriter writer;
    writer.AddRecord("run", {{"threads", static_cast<double>(threads)},
                             {"cells", static_cast<double>(num_cells)},
                             {"train_rows", static_cast<double>(train.NumRows())},
                             {"test_rows", static_cast<double>(test.NumRows())},
                             {"eval_seconds", eval_seconds},
                             {"total_seconds", total_seconds}});
    for (size_t t = 0; t < treatments.size(); ++t) {
      for (size_t m = 0; m < models.size(); ++m) {
        const EvalResult& result = treatments[t].results[m];
        writer.AddRecord(
            treatments[t].name,
            {{"model", static_cast<double>(m)},
             {"fairness_index_fpr", result.fairness_index_fpr},
             {"fairness_index_fnr", result.fairness_index_fnr},
             {"accuracy", result.accuracy}});
      }
    }
    if (writer.WriteFile(options.json_path)) {
      std::printf("JSON results written to %s\n", options.json_path.c_str());
    }
  }
}

}  // namespace remedy::bench
