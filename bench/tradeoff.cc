#include "tradeoff.h"

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/remedy.h"

namespace remedy::bench {
namespace {

struct Treatment {
  std::string name;
  // One cached evaluation per StandardModels() entry.
  std::vector<EvalResult> results;
};

Treatment EvaluateTreatment(const std::string& name, const Dataset& train,
                            const Dataset& test) {
  Treatment treatment;
  treatment.name = name;
  for (ModelType type : StandardModels()) {
    treatment.results.push_back(Evaluate(train, test, type));
  }
  return treatment;
}

void PrintPanel(const std::string& title,
                const std::vector<Treatment>& treatments,
                double EvalResult::*metric) {
  std::printf("%s\n", title.c_str());
  std::vector<std::string> header = {"treatment"};
  for (ModelType type : StandardModels()) header.push_back(ModelName(type));
  TablePrinter table(header);
  for (const Treatment& treatment : treatments) {
    std::vector<std::string> row = {treatment.name};
    for (const EvalResult& result : treatment.results) {
      row.push_back(FormatDouble(result.*metric, 4));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf("\n");
}

Dataset Remedied(const Dataset& train, IbsScope scope,
                 RemedyTechnique technique, double imbalance_threshold) {
  RemedyParams params;
  params.ibs.imbalance_threshold = imbalance_threshold;
  params.ibs.scope = scope;
  params.technique = technique;
  return RemedyDataset(train, params).value();
}

}  // namespace

void RunTradeoff(const std::string& dataset_name, const Dataset& data,
                 double imbalance_threshold) {
  auto [train, test] = Split(data);
  std::printf("dataset=%s  train=%d rows  test=%d rows  tau_c=%.2f  T=1\n\n",
              dataset_name.c_str(), train.NumRows(), test.NumRows(),
              imbalance_threshold);

  // Panels (a)-(c): identification scopes, remedy = preferential sampling.
  Dataset lattice_ps =
      Remedied(train, IbsScope::kLattice,
               RemedyTechnique::kPreferentialSampling, imbalance_threshold);
  std::vector<Treatment> scopes;
  scopes.push_back(EvaluateTreatment("Original", train, test));
  scopes.push_back(EvaluateTreatment("Lattice", lattice_ps, test));
  scopes.push_back(EvaluateTreatment(
      "Leaf",
      Remedied(train, IbsScope::kLeaf,
               RemedyTechnique::kPreferentialSampling, imbalance_threshold),
      test));
  scopes.push_back(EvaluateTreatment(
      "Top",
      Remedied(train, IbsScope::kTop,
               RemedyTechnique::kPreferentialSampling, imbalance_threshold),
      test));
  PrintPanel("(a) Fairness index, gamma = FPR (preferential sampling)",
             scopes, &EvalResult::fairness_index_fpr);
  PrintPanel("(b) Fairness index, gamma = FNR (preferential sampling)",
             scopes, &EvalResult::fairness_index_fnr);
  PrintPanel("(c) Model accuracy", scopes, &EvalResult::accuracy);

  // Panel (d): pre-processing techniques under the Lattice scope.
  std::vector<Treatment> techniques;
  techniques.push_back(scopes[0]);  // Original
  Treatment ps = scopes[1];
  ps.name = "PS";
  techniques.push_back(ps);
  techniques.push_back(EvaluateTreatment(
      "US",
      Remedied(train, IbsScope::kLattice, RemedyTechnique::kUndersample,
               imbalance_threshold),
      test));
  techniques.push_back(EvaluateTreatment(
      "DP",
      Remedied(train, IbsScope::kLattice, RemedyTechnique::kOversample,
               imbalance_threshold),
      test));
  techniques.push_back(EvaluateTreatment(
      "Massaging",
      Remedied(train, IbsScope::kLattice, RemedyTechnique::kMassaging,
               imbalance_threshold),
      test));
  PrintPanel("(d) Fairness index under FPR, by pre-processing technique",
             techniques, &EvalResult::fairness_index_fpr);
  PrintPanel("(d') Model accuracy, by pre-processing technique", techniques,
             &EvalResult::accuracy);
}

}  // namespace remedy::bench
