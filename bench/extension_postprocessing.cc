// Extension: pre-processing vs post-processing. The paper's taxonomy
// (Secs. I and VII) argues for pre-processing because it fixes the data
// once for any downstream model, while post-processing manipulates each
// model's predictions. The harness compares the IBS remedy against a
// per-subgroup threshold post-processor (Hardt et al. style) on COMPAS:
// the post-processor equalizes the statistic it is told about, the remedy
// moves both statistics at once because it fixes the cause.

#include <cstdio>
#include <iostream>
#include <memory>

#include "baselines/threshold_postprocess.h"
#include "bench_common.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/remedy.h"
#include "datagen/compas.h"
#include "fairness/fairness_index.h"
#include "ml/metrics.h"
#include "ml/model_factory.h"

namespace remedy {
namespace {

void AddRow(TablePrinter& table, const std::string& name,
            const Dataset& test, const std::vector<int>& predictions) {
  table.AddRow(
      {name,
       FormatDouble(
           ComputeFairnessIndex(test, predictions, Statistic::kFpr), 4),
       FormatDouble(
           ComputeFairnessIndex(test, predictions, Statistic::kFnr), 4),
       FormatDouble(Accuracy(test, predictions), 4)});
}

void Run() {
  Dataset data = MakeCompas();
  auto [train, test] = bench::Split(data);

  TablePrinter table({"treatment", "fairness idx (FPR)",
                      "fairness idx (FNR)", "accuracy"});

  ClassifierPtr original = MakeClassifier(ModelType::kDecisionTree);
  original->Fit(train);
  AddRow(table, "Original DT", test, original->PredictAll(test));

  RemedyParams params;
  params.ibs.imbalance_threshold = 0.1;
  params.technique = RemedyTechnique::kPreferentialSampling;
  Dataset remedied = RemedyDataset(train, params).value();
  ClassifierPtr treated = MakeClassifier(ModelType::kDecisionTree);
  treated->Fit(remedied);
  AddRow(table, "Pre-processing (Remedy)", test, treated->PredictAll(test));

  ThresholdPostprocessParams fpr_params;
  ThresholdPostprocessor fpr_post(
      MakeClassifier(ModelType::kDecisionTree), fpr_params);
  fpr_post.Fit(train);
  AddRow(table, "Post-processing (FPR thresholds)", test,
         fpr_post.PredictAll(test));

  ThresholdPostprocessParams fnr_params;
  fnr_params.statistic = Statistic::kFnr;
  ThresholdPostprocessor fnr_post(
      MakeClassifier(ModelType::kDecisionTree), fnr_params);
  fnr_post.Fit(train);
  AddRow(table, "Post-processing (FNR thresholds)", test,
         fnr_post.PredictAll(test));

  table.Print(std::cout);
  std::printf(
      "\nBoth families mitigate the unfairness here; the practical "
      "difference the paper argues is operational: the remedy fixes the "
      "data once for any downstream model, while the threshold tables are "
      "calibrated per trained model and require prediction access at "
      "decision time.\n");
}

}  // namespace
}  // namespace remedy

int main() {
  remedy::bench::PrintBanner(
      "Extension — pre-processing remedy vs threshold post-processing",
      "companion to Lin, Gupta & Jagadish, ICDE'24, Secs. I & VII",
      "the remedy mitigates FPR and FNR unfairness together; threshold "
      "post-processing targets one statistic per deployment and needs "
      "prediction access.");
  remedy::Run();
  return 0;
}
