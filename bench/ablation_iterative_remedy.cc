// Ablation for the remedy's convergence limitation (Sec. VI): one pass of
// Algorithm 2 does not guarantee an IBS-free dataset, because adjusting one
// region shifts the imbalance scores of regions above and below it in the
// lattice. The harness tracks the residual IBS size across repeated passes
// (RemedyUntilConverged) and the marginal fairness/accuracy effect of the
// extra passes, per technique, on COMPAS.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/remedy.h"
#include "datagen/compas.h"
#include "fairness/fairness_index.h"
#include "ml/metrics.h"
#include "ml/model_factory.h"

namespace remedy {
namespace {

void Run() {
  Dataset data = MakeCompas();
  auto [train, test] = bench::Split(data);

  IbsParams ibs_params;  // tau_c = 0.1, T = 1
  std::printf("initial IBS: %zu regions\n\n",
              IdentifyIbs(train, ibs_params).value().size());

  TablePrinter table({"technique", "passes", "residual |IBS| per pass",
                      "converged", "fairness idx (FPR)", "accuracy"});
  for (RemedyTechnique technique :
       {RemedyTechnique::kUndersample, RemedyTechnique::kOversample,
        RemedyTechnique::kPreferentialSampling,
        RemedyTechnique::kMassaging}) {
    RemedyParams params;
    params.ibs = ibs_params;
    params.technique = technique;
    IterativeRemedyResult result = RemedyUntilConverged(train, params, 6).value();

    std::vector<std::string> sizes;
    for (size_t size : result.ibs_sizes) {
      sizes.push_back(std::to_string(size));
    }
    ClassifierPtr model = MakeClassifier(ModelType::kDecisionTree);
    model->Fit(result.dataset);
    std::vector<int> predictions = model->PredictAll(test);
    table.AddRow({TechniqueName(technique), std::to_string(result.rounds),
                  Join(sizes, " -> "), result.converged ? "yes" : "no",
                  FormatDouble(
                      ComputeFairnessIndex(test, predictions,
                                           Statistic::kFpr),
                      4),
                  FormatDouble(Accuracy(test, predictions), 4)});
  }
  table.Print(std::cout);
  std::printf(
      "\nResidual IBS after one pass confirms the paper's limitation; the "
      "iterative extension drives it down (to zero when the techniques' "
      "rounding allows) with little additional accuracy cost.\n");
}

}  // namespace
}  // namespace remedy

int main() {
  remedy::bench::PrintBanner(
      "Ablation — iterative remedy until convergence (Sec. VI)",
      "Lin, Gupta & Jagadish, ICDE'24, Sec. VI (Limitations) + extension",
      "a single Algorithm-2 pass leaves residual biased regions; repeating "
      "the pass shrinks the residual monotonically.");
  remedy::Run();
  return 0;
}
