// Extension: the paper claims the remedy "is model agnostic and can be
// applied to any machine learning classifiers". The harness stresses the
// claim beyond the paper's four evaluated models by adding naive Bayes and
// gradient-boosted trees: both are accuracy-optimizing, so Hypothesis 1
// predicts they inherit subgroup unfairness from biased regions and benefit
// from the same pre-processing fix.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/remedy.h"
#include "datagen/compas.h"
#include "fairness/fairness_index.h"
#include "ml/metrics.h"
#include "ml/model_factory.h"

namespace remedy {
namespace {

void Run() {
  Dataset data = MakeCompas();
  auto [train, test] = bench::Split(data);

  RemedyParams params;
  params.ibs.imbalance_threshold = 0.1;
  params.technique = RemedyTechnique::kPreferentialSampling;
  Dataset remedied = RemedyDataset(train, params).value();

  TablePrinter table({"model", "idx FPR before", "idx FPR after",
                      "idx FNR before", "idx FNR after", "acc before",
                      "acc after"});
  for (ModelType type :
       {ModelType::kDecisionTree, ModelType::kRandomForest,
        ModelType::kLogisticRegression, ModelType::kNeuralNetwork,
        ModelType::kNaiveBayes, ModelType::kGradientBoosting}) {
    ClassifierPtr original = MakeClassifier(type);
    original->Fit(train);
    std::vector<int> before = original->PredictAll(test);
    ClassifierPtr treated = MakeClassifier(type);
    treated->Fit(remedied);
    std::vector<int> after = treated->PredictAll(test);
    table.AddRow(
        {ModelName(type),
         FormatDouble(ComputeFairnessIndex(test, before, Statistic::kFpr),
                      4),
         FormatDouble(ComputeFairnessIndex(test, after, Statistic::kFpr),
                      4),
         FormatDouble(ComputeFairnessIndex(test, before, Statistic::kFnr),
                      4),
         FormatDouble(ComputeFairnessIndex(test, after, Statistic::kFnr),
                      4),
         FormatDouble(Accuracy(test, before), 4),
         FormatDouble(Accuracy(test, after), 4)});
  }
  table.Print(std::cout);
  std::printf(
      "\nOne remedied training set serves every learner: the fairness "
      "index drops across all six model families, including the two the "
      "paper never evaluated.\n");
}

}  // namespace
}  // namespace remedy

int main() {
  remedy::bench::PrintBanner(
      "Extension — model-agnosticism beyond the paper's four classifiers",
      "Lin, Gupta & Jagadish, ICDE'24, Sec. V-A/b (claim) + NB and GBT",
      "the same remedied training set improves the FPR and FNR fairness "
      "indices for DT, RF, LG, NN, NB and gradient boosting alike.");
  remedy::Run();
  return 0;
}
