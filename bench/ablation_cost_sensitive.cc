// Ablation for the paper's stated limitation (Sec. VI): the correlation
// between representation bias and subgroup unfairness is argued for
// classifiers *optimized for accuracy*; for cost-sensitive classifiers the
// correlation may not hold. The harness compares an accuracy-optimizing
// decision tree against cost-sensitive variants on COMPAS: how well the
// unfair subgroups align with the IBS, and how the remedy's effect changes.

#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/ibs_identify.h"
#include "core/remedy.h"
#include "datagen/compas.h"
#include "fairness/divergence.h"
#include "fairness/fairness_index.h"
#include "ml/cost_sensitive.h"
#include "ml/metrics.h"
#include "ml/model_factory.h"

namespace remedy {
namespace {

struct CostRow {
  std::string policy;
  double alignment;     // unfair subgroups aligned with IBS
  int unfair;
  double index_before;  // fairness index (FPR) on the original training set
  double index_after;   // ... after remedying
};

ClassifierPtr MakeModel(double fp_cost) {
  if (fp_cost == 1.0) return MakeClassifier(ModelType::kDecisionTree);
  CostMatrix costs;
  costs.false_positive_cost = fp_cost;
  return std::make_unique<CostSensitiveClassifier>(
      MakeClassifier(ModelType::kDecisionTree), costs);
}

CostRow Measure(const std::string& policy, double fp_cost,
                const Dataset& train, const Dataset& test,
                const Dataset& remedied,
                const std::vector<BiasedRegion>& ibs) {
  ClassifierPtr model = MakeModel(fp_cost);
  model->Fit(train);
  std::vector<int> predictions = model->PredictAll(test);

  SubgroupAnalysis analysis =
      AnalyzeSubgroups(test, predictions, Statistic::kFpr, 0.05);
  std::vector<SubgroupReport> unfair = FilterUnfair(analysis, 0.1);
  int aligned = 0;
  for (const SubgroupReport& report : unfair) {
    aligned += DominatesAnyBiasedRegion(report.pattern, ibs);
  }

  ClassifierPtr treated = MakeModel(fp_cost);
  treated->Fit(remedied);
  return {policy,
          unfair.empty() ? 1.0
                         : static_cast<double>(aligned) / unfair.size(),
          static_cast<int>(unfair.size()),
          ComputeFairnessIndex(test, predictions, Statistic::kFpr),
          ComputeFairnessIndex(test, treated->PredictAll(test),
                               Statistic::kFpr)};
}

void Run() {
  Dataset data = MakeCompas();
  auto [train, test] = bench::Split(data);

  IbsParams ibs_params;
  std::vector<BiasedRegion> ibs = IdentifyIbs(train, ibs_params).value();

  RemedyParams remedy_params;
  remedy_params.ibs = ibs_params;
  remedy_params.technique = RemedyTechnique::kPreferentialSampling;
  Dataset remedied = RemedyDataset(train, remedy_params).value();

  TablePrinter table({"decision policy", "unfair subgroups", "IBS alignment",
                      "index before remedy", "index after remedy"});
  for (const auto& [policy, fp_cost] :
       std::vector<std::pair<std::string, double>>{
           {"accuracy-optimal (c_fp = c_fn)", 1.0},
           {"FP-averse (c_fp = 3 c_fn)", 3.0},
           {"FP-averse (c_fp = 9 c_fn)", 9.0},
           {"FN-averse (c_fp = c_fn / 3)", 1.0 / 3.0},
       }) {
    CostRow row = Measure(policy, fp_cost, train, test, remedied, ibs);
    table.AddRow({row.policy, std::to_string(row.unfair),
                  FormatDouble(100.0 * row.alignment, 1) + "%",
                  FormatDouble(row.index_before, 4),
                  FormatDouble(row.index_after, 4)});
  }
  table.Print(std::cout);
  std::printf(
      "\nThe accuracy-optimal policy shows the clean pattern the paper "
      "relies on; skewed decision costs move the decision threshold away "
      "from the class-majority rule, so FPR unfairness and the rebalancing "
      "remedy decouple (the paper's stated limitation).\n");
}

}  // namespace
}  // namespace remedy

int main() {
  remedy::bench::PrintBanner(
      "Ablation — cost-sensitive classifiers (Sec. VI, Limitations)",
      "Lin, Gupta & Jagadish, ICDE'24, Sec. VI",
      "the IBS/unfairness correlation and the remedy's effect are strongest "
      "for accuracy-optimizing classifiers and weaken as misclassification "
      "costs skew.");
  remedy::Run();
  return 0;
}
