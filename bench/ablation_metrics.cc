// Ablation for the paper's fairness-metric discussion (Sec. VI): the
// remedy also moves statistical parity, while accuracy-based measures
// (error rate) are confounded by the train/test distribution difference the
// remedy introduces — which is why the paper's evaluation sticks to FPR and
// FNR. The harness reports the fairness index under all four statistics
// before and after the remedy, on COMPAS and Adult (decision tree).

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/remedy.h"
#include "datagen/adult.h"
#include "datagen/compas.h"
#include "fairness/fairness_index.h"
#include "ml/metrics.h"
#include "ml/model_factory.h"

namespace remedy {
namespace {

void Run(const std::string& name, const Dataset& data, double tau_c) {
  auto [train, test] = bench::Split(data);

  ClassifierPtr original = MakeClassifier(ModelType::kDecisionTree);
  original->Fit(train);
  std::vector<int> before = original->PredictAll(test);

  RemedyParams params;
  params.ibs.imbalance_threshold = tau_c;
  params.technique = RemedyTechnique::kPreferentialSampling;
  Dataset remedied = RemedyDataset(train, params).value();
  ClassifierPtr treated = MakeClassifier(ModelType::kDecisionTree);
  treated->Fit(remedied);
  std::vector<int> after = treated->PredictAll(test);

  std::printf("(%s) decision tree, tau_c = %.1f, T = 1\n", name.c_str(),
              tau_c);
  TablePrinter table({"statistic", "fairness index before",
                      "fairness index after", "change"});
  for (Statistic statistic :
       {Statistic::kFpr, Statistic::kFnr, Statistic::kStatisticalParity,
        Statistic::kErrorRate}) {
    double index_before = ComputeFairnessIndex(test, before, statistic);
    double index_after = ComputeFairnessIndex(test, after, statistic);
    table.AddRow({StatisticName(statistic), FormatDouble(index_before, 4),
                  FormatDouble(index_after, 4),
                  FormatDouble(index_after - index_before, 4)});
  }
  table.Print(std::cout);
  std::printf("accuracy %.4f -> %.4f\n\n", Accuracy(test, before),
              Accuracy(test, after));
}

}  // namespace
}  // namespace remedy

int main() {
  remedy::bench::PrintBanner(
      "Ablation — fairness metrics beyond FPR/FNR (Sec. VI)",
      "Lin, Gupta & Jagadish, ICDE'24, Sec. VI (Discussion)",
      "the remedy improves FPR/FNR and statistical-parity subgroup "
      "unfairness; error-rate-based indices move less predictably because "
      "the remedied training distribution no longer matches the (still "
      "biased) test distribution.");
  remedy::Run("ProPublica", remedy::MakeCompas(), 0.1);
  remedy::Run("Adult", remedy::MakeAdult(), 0.5);
  return 0;
}
