// Simulates the theoretical insight behind Hypothesis 1 (Sec. II-B): with a
// single protected attribute, if a region c_i holds more positive records
// than its neighboring region, an accuracy-optimizing classifier favors the
// majority class inside c_i, so negatives there are misclassified at a
// higher rate — FPR divergence grows with the imbalance gap.
//
// The harness sweeps the planted imbalance of one region and reports the
// region's FPR divergence and the |ratio_r - ratio_rn| gap side by side,
// for an accuracy-optimizing decision tree and logistic regression.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/imbalance.h"
#include "fairness/divergence.h"
#include "ml/metrics.h"
#include "ml/model_factory.h"

namespace remedy {
namespace {

// One protected attribute with 4 values; 6 noisy non-protected features so
// the learner has something honest to fit as well.
Dataset MakeWorld(double skew_logit, uint64_t seed) {
  std::vector<AttributeSchema> attributes = {
      AttributeSchema("group", {"g0", "g1", "g2", "g3"}),
      AttributeSchema("f1", {"lo", "hi"}),
      AttributeSchema("f2", {"lo", "hi"}),
      AttributeSchema("f3", {"a", "b", "c"}),
  };
  DataSchema schema(std::move(attributes), {0});
  Dataset data(schema);
  Rng rng(seed);
  for (int i = 0; i < 8000; ++i) {
    int group = rng.UniformInt(4);
    int f1 = rng.UniformInt(2), f2 = rng.UniformInt(2),
        f3 = rng.UniformInt(3);
    double logit = -0.1 + 0.9 * f1 - 0.9 * f2 + 0.3 * (f3 == 2);
    if (group == 0) logit += skew_logit;  // the biased region c_0
    double p = 1.0 / (1.0 + std::exp(-logit));
    data.AddRow({group, f1, f2, f3}, rng.Bernoulli(p) ? 1 : 0);
  }
  return data;
}

// FPR of group 0 minus overall FPR, on the test set.
double GroupFprDivergence(const Dataset& test,
                          const std::vector<int>& predictions) {
  SubgroupAnalysis analysis =
      AnalyzeSubgroups(test, predictions, Statistic::kFpr);
  for (const SubgroupReport& report : analysis.subgroups) {
    if (report.pattern.Value(0) == 0) {
      return report.statistic - analysis.overall;
    }
  }
  return 0.0;
}

void Run() {
  TablePrinter table({"skew (logit)", "|ratio_r - ratio_rn|",
                      "DT FPR divergence", "LG FPR divergence"});
  for (double skew : {0.0, 0.5, 1.0, 1.5, 2.0, 2.5}) {
    Dataset data = MakeWorld(skew, 31);
    auto [train, test] = bench::Split(data);

    // Measured imbalance gap of the region vs its neighborhood.
    Hierarchy hierarchy(train);
    NeighborhoodCalculator neighborhood(hierarchy, 1.0);
    const auto& node = hierarchy.NodeCounts(0b1);
    Pattern region(std::vector<int>{0});
    RegionCounts counts =
        node.at(hierarchy.counter().KeyFor(region, 0b1));
    double gap = std::fabs(
        ImbalanceScore(counts) -
        ImbalanceScore(neighborhood.NaiveNeighborCounts(region)));

    ClassifierPtr tree = MakeClassifier(ModelType::kDecisionTree);
    tree->Fit(train);
    ClassifierPtr logreg = MakeClassifier(ModelType::kLogisticRegression);
    logreg->Fit(train);
    table.AddRow({FormatDouble(skew, 1), FormatDouble(gap, 3),
                  FormatDouble(
                      GroupFprDivergence(test, tree->PredictAll(test)), 3),
                  FormatDouble(
                      GroupFprDivergence(test, logreg->PredictAll(test)),
                      3)});
  }
  table.Print(std::cout);
  std::printf(
      "\nBoth columns rise together: the more a region's class ratio "
      "diverges from its neighbors, the more an accuracy-optimizing "
      "classifier over-predicts the majority class there.\n");
}

}  // namespace
}  // namespace remedy

int main() {
  remedy::bench::PrintBanner(
      "Hypothesis 1 — imbalance gap drives FPR divergence",
      "Lin, Gupta & Jagadish, ICDE'24, Sec. II-B (theoretical insight)",
      "monotone relationship between |ratio_r - ratio_rn| and the region's "
      "FPR divergence for accuracy-optimizing classifiers.");
  remedy::Run();
  return 0;
}
