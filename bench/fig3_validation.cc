// Reproduces Fig. 3 (Sec. V-B1): the connection between representation bias
// in the Implicit Biased Set and the unfair subgroups of the prediction
// outcome, on ProPublica with tau_c = 0.1, T = 1, for DT / RF / LG / NN
// under both FPR and FNR.
//
// For every significant unfair subgroup the table reports whether the same
// data pattern is in the IBS ("in-IBS", grey in the paper's figure),
// dominates a biased region ("dominates", blue), or is unaligned. The
// second table verifies the direction claim: high-FPR subgroups associate
// with ratio_r > ratio_rn regions, high-FNR ones with ratio_r < ratio_rn.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/ibs_identify.h"
#include "datagen/compas.h"
#include "fairness/divergence.h"

namespace remedy {
namespace {

void Run() {
  Dataset data = MakeCompas();
  auto [train, test] = bench::Split(data);

  IbsParams params;  // tau_c = 0.1, T = 1 per Sec. V-B1
  std::vector<BiasedRegion> ibs = IdentifyIbs(train, params).value();
  std::printf("IBS on the training set: %zu biased regions\n\n", ibs.size());

  TablePrinter alignment(
      {"model", "gamma", "unfair subgroup", "divergence", "alignment"});
  int total_unfair = 0, aligned = 0;
  int high_with_excess_positives = 0, high_total = 0;

  for (ModelType type : StandardModels()) {
    ClassifierPtr model = MakeClassifier(type);
    model->Fit(train);
    std::vector<int> predictions = model->PredictAll(test);
    for (Statistic statistic : {Statistic::kFpr, Statistic::kFnr}) {
      SubgroupAnalysis analysis =
          AnalyzeSubgroups(test, predictions, statistic, /*min_support=*/0.05);
      std::vector<SubgroupReport> unfair = FilterUnfair(analysis, 0.1);
      for (const SubgroupReport& report : unfair) {
        ++total_unfair;
        // Same-pattern membership first, then dominance (Fig. 3's grey
        // vs blue marks).
        bool in_ibs = false;
        bool excess_positive_side = false;
        for (const BiasedRegion& region : ibs) {
          if (region.pattern == report.pattern) {
            in_ibs = true;
            excess_positive_side = region.ratio > region.neighbor_ratio ||
                                   region.ratio == kAllPositiveRatio;
          }
        }
        bool dominates = DominatesAnyBiasedRegion(report.pattern, ibs);
        std::string mark =
            in_ibs ? "in-IBS" : (dominates ? "dominates" : "unaligned");
        if (in_ibs || dominates) ++aligned;
        if (in_ibs && statistic == Statistic::kFpr &&
            report.statistic > analysis.overall) {
          ++high_total;
          high_with_excess_positives += excess_positive_side;
        }
        alignment.AddRow({ModelName(type), StatisticName(statistic),
                          report.pattern.ToString(test.schema()),
                          FormatDouble(report.divergence, 3), mark});
      }
    }
  }
  alignment.Print(std::cout);
  std::printf(
      "\n%d of %d significant unfair subgroups are in the IBS or dominate a "
      "biased region (the paper reports \"nearly all\").\n",
      aligned, total_unfair);
  if (high_total > 0) {
    std::printf(
        "%d of %d high-FPR in-IBS subgroups sit on the ratio_r > ratio_rn "
        "side, matching the paper's direction claim.\n",
        high_with_excess_positives, high_total);
  }
}

}  // namespace
}  // namespace remedy

int main() {
  remedy::bench::PrintBanner(
      "Fig. 3 — unfair subgroups vs. the Implicit Biased Set (ProPublica)",
      "Lin, Gupta & Jagadish, ICDE'24, Figure 3 and Sec. V-B1",
      "nearly all unfair subgroups (any model, FPR or FNR) are in the IBS "
      "or dominate a biased region; high-FPR groups align with "
      "ratio_r > ratio_rn.");
  remedy::Run();
  return 0;
}
