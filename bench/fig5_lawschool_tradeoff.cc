// Reproduces Fig. 5: the fairness-accuracy trade-off on the Law School
// dataset.

#include "bench_common.h"
#include "datagen/law_school.h"
#include "tradeoff.h"

int main() {
  remedy::bench::PrintBanner(
      "Fig. 5 — fairness-accuracy trade-off (Law School)",
      "Lin, Gupta & Jagadish, ICDE'24, Figure 5 (tau_c = 0.1, T = 1)",
      "Lattice improves both fairness indices across all four models; "
      "preferential sampling edges out undersampling on this smaller "
      "dataset.");
  remedy::Dataset data = remedy::MakeLawSchool();
  remedy::bench::RunTradeoff("LawSchool", data, /*imbalance_threshold=*/0.1);
  return 0;
}
