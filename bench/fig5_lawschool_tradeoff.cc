// Reproduces Fig. 5: the fairness-accuracy trade-off on the Law School
// dataset.

#include "bench_common.h"
#include "datagen/law_school.h"
#include "tradeoff.h"

int main(int argc, char** argv) {
  remedy::bench::PrintBanner(
      "Fig. 5 — fairness-accuracy trade-off (Law School)",
      "Lin, Gupta & Jagadish, ICDE'24, Figure 5 (tau_c = 0.1, T = 1)",
      "Lattice improves both fairness indices across all four models; "
      "preferential sampling edges out undersampling on this smaller "
      "dataset.");
  remedy::Dataset data = remedy::MakeLawSchool();
  remedy::bench::TradeoffOptions options;
  options.threads = remedy::bench::IntFlagValue(argc, argv, "--threads", 0);
  options.json_path = remedy::bench::JsonPathFromArgs(argc, argv);
  remedy::bench::RunTradeoff("LawSchool", data, /*imbalance_threshold=*/0.1,
                             options);
  return 0;
}
