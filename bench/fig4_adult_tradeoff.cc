// Reproduces Fig. 4: the fairness-accuracy trade-off on the Adult dataset.

#include "bench_common.h"
#include "datagen/adult.h"
#include "tradeoff.h"

int main(int argc, char** argv) {
  remedy::bench::PrintBanner(
      "Fig. 4 — fairness-accuracy trade-off (Adult)",
      "Lin, Gupta & Jagadish, ICDE'24, Figure 4 (tau_c = 0.5, T = 1)",
      "Lattice cuts both FPR and FNR fairness indices sharply at < 0.1 "
      "accuracy cost; Leaf keeps accuracy but barely moves the index; Top "
      "is coarse. PS and US are the strongest techniques; Massaging costs "
      "the most accuracy.");
  remedy::Dataset data = remedy::MakeAdult();
  remedy::bench::TradeoffOptions options;
  options.threads = remedy::bench::IntFlagValue(argc, argv, "--threads", 0);
  options.json_path = remedy::bench::JsonPathFromArgs(argc, argv);
  remedy::bench::RunTradeoff("Adult", data, /*imbalance_threshold=*/0.5,
                             options);
  return 0;
}
