// Reproduces Fig. 7: the effect of the imbalance threshold tau_c on the
// fairness index (FPR) and model accuracy, decision tree, on ProPublica and
// Adult, with T = 1.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/remedy.h"
#include "datagen/adult.h"
#include "datagen/compas.h"

namespace remedy {
namespace {

void Sweep(const std::string& name, const Dataset& data, int threads,
           bench::JsonResultWriter* writer) {
  auto [train, test] = bench::Split(data);
  std::printf("(%s) decision tree, T = 1, tau_c from 0.1 to 0.9\n",
              name.c_str());
  TablePrinter table({"tau_c", "fairness index (FPR)", "accuracy",
                      "regions remedied", "instances moved"});

  bench::EvalResult original =
      bench::Evaluate(train, test, ModelType::kDecisionTree);
  table.AddRow({"original", FormatDouble(original.fairness_index_fpr, 4),
                FormatDouble(original.accuracy, 4), "-", "-"});
  if (writer != nullptr) {
    writer->AddRecord(name,
                      {{"original", 1.0},
                       {"fairness_index_fpr", original.fairness_index_fpr},
                       {"accuracy", original.accuracy}});
  }

  for (double tau_c : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    RemedyParams params;
    params.ibs.imbalance_threshold = tau_c;
    params.technique = RemedyTechnique::kPreferentialSampling;
    params.planning_threads = threads;
    RemedyStats stats;
    Dataset remedied = RemedyDataset(train, params, &stats).value();
    bench::EvalResult result =
        bench::Evaluate(remedied, test, ModelType::kDecisionTree);
    table.AddRow({FormatDouble(tau_c, 1),
                  FormatDouble(result.fairness_index_fpr, 4),
                  FormatDouble(result.accuracy, 4),
                  std::to_string(stats.regions_processed),
                  std::to_string(stats.instances_added +
                                 stats.instances_removed)});
    if (writer != nullptr) {
      writer->AddRecord(
          name,
          {{"tau_c", tau_c},
           {"fairness_index_fpr", result.fairness_index_fpr},
           {"accuracy", result.accuracy},
           {"regions_processed",
            static_cast<double>(stats.regions_processed)},
           {"instances_moved", static_cast<double>(stats.instances_added +
                                                   stats.instances_removed)}});
    }
  }
  table.Print(std::cout);
  std::printf("\n");
}

}  // namespace
}  // namespace remedy

int main(int argc, char** argv) {
  remedy::bench::PrintBanner(
      "Fig. 7 — fairness index and accuracy, varying tau_c",
      "Lin, Gupta & Jagadish, ICDE'24, Figure 7 (DT, ProPublica & Adult)",
      "lower tau_c => more regions flagged and more instance updates => "
      "better fairness but lower accuracy; Adult (6 protected attributes) "
      "stays robust even at high tau_c because its IBS is larger.");
  const int threads = remedy::bench::IntFlagValue(argc, argv, "--threads", 0);
  const std::string json_path = remedy::bench::JsonPathFromArgs(argc, argv);
  remedy::bench::JsonResultWriter writer;
  remedy::bench::JsonResultWriter* sink =
      json_path.empty() ? nullptr : &writer;
  remedy::Sweep("ProPublica", remedy::MakeCompas(), threads, sink);
  remedy::Sweep("Adult", remedy::MakeAdult(), threads, sink);
  if (sink != nullptr && writer.WriteFile(json_path)) {
    std::printf("JSON results written to %s\n", json_path.c_str());
  }
  return 0;
}
