// Google-benchmark micro benchmarks for the core operations: region
// counting, hierarchy node materialization, neighbor-count computation
// (naive vs optimized) and full IBS identification. These quantify the
// constant factors behind the Fig. 9 curves.

#include <benchmark/benchmark.h>

#include "common/check.h"

#include "core/hierarchy.h"
#include "core/ibs_identify.h"
#include "core/imbalance.h"
#include "datagen/adult.h"
#include "datagen/compas.h"
#include "mining/region_miner.h"

namespace remedy {
namespace {

const Dataset& CompasData() {
  static const Dataset* data = new Dataset(MakeCompas());
  return *data;
}

const Dataset& AdultData(int num_protected) {
  static const Dataset* base = new Dataset(MakeAdult());
  static Dataset* widened = nullptr;
  static int current = -1;
  if (current != num_protected) {
    delete widened;
    widened = new Dataset(*base);
    widened->SetProtected(AdultScalabilityProtected(num_protected));
    current = num_protected;
  }
  return *widened;
}

void BM_CountLeafNode(benchmark::State& state) {
  const Dataset& data = AdultData(static_cast<int>(state.range(0)));
  RegionCounter counter(data.schema());
  const uint32_t leaf = (1u << counter.NumProtected()) - 1u;
  for (auto _ : state) {
    auto counts = counter.CountNode(data, leaf);
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(state.iterations() * data.NumRows());
}
BENCHMARK(BM_CountLeafNode)->Arg(3)->Arg(6)->Arg(8);

void BM_HierarchyAllNodes(benchmark::State& state) {
  const Dataset& data = AdultData(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Hierarchy hierarchy(data);
    for (uint32_t mask : hierarchy.BottomUpMasks()) {
      benchmark::DoNotOptimize(hierarchy.NodeCounts(mask).size());
    }
  }
}
BENCHMARK(BM_HierarchyAllNodes)->Arg(3)->Arg(5)->Arg(6)->Arg(8);

// One rollup step: derive a level-7 node from the |X| = 8 leaf. This is the
// per-node cost the lattice pays instead of a dataset scan.
void BM_RollUpOneLevel(benchmark::State& state) {
  const Dataset& data = AdultData(8);
  RegionCounter counter(data.schema());
  const uint32_t leaf = (1u << counter.NumProtected()) - 1u;
  const NodeTable leaf_table = counter.CountNode(data, leaf);
  const uint32_t parent = leaf & ~1u;
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.RollUp(leaf_table, leaf, parent));
  }
  state.SetItemsProcessed(state.iterations() * leaf_table.size());
}
BENCHMARK(BM_RollUpOneLevel);

// Whole-lattice build through EagerBuild at the given worker count.
void BM_EagerBuild(benchmark::State& state) {
  const Dataset& data = AdultData(8);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Hierarchy hierarchy(data);
    REMEDY_CHECK(hierarchy.EagerBuild(threads).ok());
    benchmark::DoNotOptimize(hierarchy.NodeCounts(hierarchy.LeafMask()));
  }
}
BENCHMARK(BM_EagerBuild)->Arg(1)->Arg(4);

// Binary-search lookups against the flat sorted node storage.
void BM_NodeTableFind(benchmark::State& state) {
  const Dataset& data = AdultData(8);
  RegionCounter counter(data.schema());
  const uint32_t leaf = (1u << counter.NumProtected()) - 1u;
  const NodeTable table = counter.CountNode(data, leaf);
  std::vector<uint64_t> keys;
  keys.reserve(table.size());
  for (const auto& [key, counts] : table) keys.push_back(key);
  for (auto _ : state) {
    for (uint64_t key : keys) {
      benchmark::DoNotOptimize(table.find(key));
    }
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_NodeTableFind);

void BM_NeighborCountsNaive(benchmark::State& state) {
  const Dataset& data = CompasData();
  Hierarchy hierarchy(data);
  NeighborhoodCalculator neighborhood(hierarchy, 1.0);
  const uint32_t leaf = hierarchy.LeafMask();
  const auto& node = hierarchy.NodeCounts(leaf);
  std::vector<Pattern> patterns;
  for (const auto& [key, counts] : node) {
    patterns.push_back(hierarchy.counter().PatternFor(key, leaf));
  }
  for (auto _ : state) {
    for (const Pattern& pattern : patterns) {
      benchmark::DoNotOptimize(
          neighborhood.NaiveNeighborCounts(pattern));
    }
  }
  state.SetItemsProcessed(state.iterations() * patterns.size());
}
BENCHMARK(BM_NeighborCountsNaive);

void BM_NeighborCountsOptimized(benchmark::State& state) {
  const Dataset& data = CompasData();
  Hierarchy hierarchy(data);
  NeighborhoodCalculator neighborhood(hierarchy, 1.0);
  const uint32_t leaf = hierarchy.LeafMask();
  const auto& node = hierarchy.NodeCounts(leaf);
  std::vector<std::pair<Pattern, RegionCounts>> regions;
  for (const auto& [key, counts] : node) {
    regions.emplace_back(hierarchy.counter().PatternFor(key, leaf), counts);
  }
  // Warm the parent-node caches so the steady-state cost is measured.
  for (const auto& [pattern, counts] : regions) {
    benchmark::DoNotOptimize(
        neighborhood.OptimizedNeighborCounts(pattern, counts));
  }
  for (auto _ : state) {
    for (const auto& [pattern, counts] : regions) {
      benchmark::DoNotOptimize(
          neighborhood.OptimizedNeighborCounts(pattern, counts));
    }
  }
  state.SetItemsProcessed(state.iterations() * regions.size());
}
BENCHMARK(BM_NeighborCountsOptimized);

void BM_IdentifyIbs(benchmark::State& state) {
  const Dataset& data = CompasData();
  IbsParams params;
  params.algorithm = state.range(0) == 0 ? IbsAlgorithm::kNaive
                                         : IbsAlgorithm::kOptimized;
  for (auto _ : state) {
    benchmark::DoNotOptimize(IdentifyIbs(data, params).value());
  }
}
BENCHMARK(BM_IdentifyIbs)->Arg(0)->Arg(1);

// Candidate enumeration by FP-growth instead of the full lattice sweep
// (mining/region_miner.h): measures the frequent-pattern view of Theorem 1.
void BM_IdentifyIbsWithMiner(benchmark::State& state) {
  const Dataset& data = CompasData();
  IbsParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(IdentifyIbsWithMiner(data, params));
  }
}
BENCHMARK(BM_IdentifyIbsWithMiner);

}  // namespace
}  // namespace remedy

BENCHMARK_MAIN();
