// Microbenchmarks of the counting engine behind the lattice: the leaf-node
// tally per counting backend (scalar / simd / sharded) over a streamed
// Adult-schema columnar store, and NodeTable construction over shuffled
// entries (exercising the LSD radix sort vs the comparison-sort fallback).
//
// Run with --metrics-json <file> to also dump the pipeline-metrics snapshot
// (lattice/shard_* and lattice/radix_sort_* land here).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/counting_backend.h"
#include "core/region_counter.h"
#include "data/columnar.h"
#include "datagen/adult.h"
#include "datagen/generator.h"

namespace remedy {
namespace {

constexpr int kBenchRows = 1 << 20;

// One store + counter pair shared by every backend case, built once: the
// benches time counting, not generation.
struct BenchInput {
  ColumnarShardStore store;
  DataSchema schema;
};

const BenchInput& Input() {
  static const BenchInput* input = [] {
    SyntheticSpec spec = AdultSpec(kBenchRows);
    DataSchema schema = spec.MakeSchema();
    spec.protected_indices.clear();
    for (const std::string& name : AdultScalabilityProtected(8)) {
      spec.protected_indices.push_back(schema.AttributeIndex(name));
    }
    auto* built = new BenchInput;
    built->store = GenerateSyntheticStore(spec, /*seed=*/42);
    built->schema = built->store.schema();
    return built;
  }();
  return *input;
}

void BM_CountLeaf(benchmark::State& state, CountingBackendKind kind) {
  const BenchInput& input = Input();
  RegionCounter counter(input.schema);
  const uint32_t leaf_mask = (1u << counter.NumProtected()) - 1;
  std::unique_ptr<CountingBackend> backend = CountingBackend::Create(kind);
  CountingSource source;
  source.store = &input.store;
  const int threads = ThreadPool::DefaultThreads();
  for (auto _ : state) {
    NodeTable node = backend->CountNode(source, counter, leaf_mask, threads);
    benchmark::DoNotOptimize(node);
  }
  state.SetItemsProcessed(state.iterations() * input.store.NumRows());
}

BENCHMARK_CAPTURE(BM_CountLeaf, scalar, CountingBackendKind::kScalar);
BENCHMARK_CAPTURE(BM_CountLeaf, simd, CountingBackendKind::kSimd);
BENCHMARK_CAPTURE(BM_CountLeaf, sharded, CountingBackendKind::kSharded);

// NodeTable construction from shuffled entries: below the radix threshold
// this is the std::sort path, above it the LSD radix sort.
void BM_NodeTableSort(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(7);
  std::vector<NodeTable::Entry> base;
  base.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    const uint64_t key =
        static_cast<uint64_t>(rng.UniformInt(static_cast<int>(n) * 4));
    base.push_back({key, RegionCounts{rng.UniformRange(1, 100), 1}});
  }
  for (auto _ : state) {
    std::vector<NodeTable::Entry> entries = base;
    NodeTable table(std::move(entries));
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

BENCHMARK(BM_NodeTableSort)->Arg(256)->Arg(4096)->Arg(65536)->Arg(1 << 20);

}  // namespace
}  // namespace remedy

int main(int argc, char** argv) {
  std::string metrics_path;
  std::vector<char*> args;
  args.reserve(argc);
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--metrics-json" && i + 1 < argc) {
      metrics_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!metrics_path.empty()) {
    remedy::Status written = remedy::WriteMetricsJsonFile(metrics_path);
    if (!written.ok()) {
      std::fprintf(stderr, "metrics snapshot failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("pipeline metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}
