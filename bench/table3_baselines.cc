// Reproduces Table III: fairness violation, model accuracy and execution
// time of Remedy against the subgroup-unfairness-mitigation baselines, on
// Adult with X = {race, gender} and logistic regression (the linear-model
// setting GerryFair requires).

#include <cstdio>
#include <functional>
#include <iostream>

#include "baselines/coverage.h"
#include "baselines/fair_balance.h"
#include "baselines/fair_smote.h"
#include "baselines/gerry_fair.h"
#include "baselines/reweighting.h"
#include "bench_common.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/remedy.h"
#include "datagen/adult.h"
#include "fairness/fairness_violation.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"

namespace remedy {
namespace {

struct Row {
  std::string approach;
  double violation;
  double accuracy;
  double seconds;
};

Row Measure(const std::string& approach, const Dataset& train,
            const Dataset& test,
            const std::function<ClassifierPtr(const Dataset&)>& build) {
  WallTimer timer;
  ClassifierPtr model = build(train);
  double seconds = timer.Seconds();
  std::vector<int> predictions = model->PredictAll(test);
  return {approach,
          ComputeFairnessViolation(test, predictions, Statistic::kFpr)
              .violation,
          Accuracy(test, predictions), seconds};
}

// In-model worker count for the logistic trainer, set from --threads in
// main. Bit-identical across values (see LogisticRegressionParams).
int g_threads = 1;

ClassifierPtr FitLogReg(const Dataset& train) {
  LogisticRegressionParams params;
  params.threads = g_threads;
  auto model = std::make_unique<LogisticRegression>(params);
  model->Fit(train);
  return model;
}

void Run(int threads, const std::string& json_path) {
  g_threads = threads;
  Dataset data = MakeAdult();
  data.SetProtected({"race", "gender"});  // as in [35] / Table III
  auto [train, test] = bench::Split(data);
  std::printf("dataset=Adult  X={race, gender}  model=LG  train=%d rows\n\n",
              train.NumRows());

  std::vector<Row> rows;
  rows.push_back(Measure("Original", train, test, FitLogReg));

  rows.push_back(Measure("Remedy", train, test, [threads](const Dataset& t) {
    RemedyParams params;
    params.ibs.imbalance_threshold = 0.1;  // tau_c = 0.1
    // |X| = 2 here, so the whole-space comparison T = |X| applies — the
    // regime the paper's own Fig. 8 analysis recommends for small
    // protected sets. Undersampling is the strongest technique for this
    // setting on the simulated Adult (see EXPERIMENTS.md); the paper's
    // default preferential sampling is exercised in Figs. 4-6.
    params.ibs.distance_threshold = 2.0;
    params.technique = RemedyTechnique::kUndersample;
    params.planning_threads = threads;
    return FitLogReg(RemedyDataset(t, params).value());
  }));

  rows.push_back(Measure("Coverage", train, test, [](const Dataset& t) {
    CoverageParams params;
    params.threshold = 500;  // small (race, gender) cells get augmented
    return FitLogReg(ApplyCoverage(t, params));
  }));

  rows.push_back(Measure("FairBalance", train, test, [](const Dataset& t) {
    return FitLogReg(ApplyFairBalance(t));
  }));

  rows.push_back(Measure("Fair-SMOTE", train, test, [](const Dataset& t) {
    FairSmoteParams params;
    params.max_candidates = 0;  // exact kNN, the cost the paper measures
    return FitLogReg(ApplyFairSmote(t, params));
  }));

  rows.push_back(Measure("Reweighting", train, test, [](const Dataset& t) {
    return FitLogReg(ApplyReweighting(t));
  }));

  rows.push_back(Measure("GerryFair", train, test, [](const Dataset& t) {
    GerryFairParams params;
    params.iterations = 20;
    auto model = std::make_unique<GerryFair>(params);
    model->Fit(t);
    return model;
  }));

  TablePrinter table(
      {"approach", "fairness violation", "accuracy", "time (s)"});
  for (const Row& row : rows) {
    table.AddRow({row.approach, FormatDouble(row.violation, 4),
                  FormatDouble(row.accuracy, 4),
                  FormatDouble(row.seconds, 2)});
  }
  table.Print(std::cout);

  if (!json_path.empty()) {
    bench::JsonResultWriter writer;
    writer.AddRecord("run", {{"threads", static_cast<double>(threads)},
                             {"train_rows",
                              static_cast<double>(train.NumRows())},
                             {"test_rows",
                              static_cast<double>(test.NumRows())}});
    for (const Row& row : rows) {
      writer.AddRecord(row.approach, {{"fairness_violation", row.violation},
                                      {"accuracy", row.accuracy},
                                      {"seconds", row.seconds}});
    }
    if (writer.WriteFile(json_path)) {
      std::printf("JSON results written to %s\n", json_path.c_str());
    }
  }
}

}  // namespace
}  // namespace remedy

int main(int argc, char** argv) {
  remedy::bench::PrintBanner(
      "Table III — comparison with subgroup-unfairness baselines (Adult)",
      "Lin, Gupta & Jagadish, ICDE'24, Table III",
      "Coverage does not reduce the violation (it targets quantity, not "
      "class balance) but helps accuracy; Reweighting drives the violation "
      "to ~0 on two protected attributes; FairBalance and Fair-SMOTE trade "
      "substantial accuracy; Fair-SMOTE and GerryFair are orders of "
      "magnitude slower than the other pre-processing methods.");
  remedy::Run(remedy::bench::IntFlagValue(argc, argv, "--threads", 1),
              remedy::bench::JsonPathFromArgs(argc, argv));
  return 0;
}
