#ifndef REMEDY_BENCH_TRADEOFF_H_
#define REMEDY_BENCH_TRADEOFF_H_

#include <string>

#include "data/dataset.h"

namespace remedy::bench {

// Shared driver for the fairness-accuracy trade-off figures (Fig. 4 Adult,
// Fig. 5 Law School, Fig. 6 ProPublica):
//   (a/b) fairness index under FPR and FNR for Original vs the Lattice /
//         Leaf / Top identification scopes (remedy = preferential sampling),
//   (c)   model accuracy for the same treatments,
//   (d)   the four pre-processing techniques under the Lattice scope.
// All of DT / RF / LG / NN are evaluated, as in the paper.
void RunTradeoff(const std::string& dataset_name, const Dataset& data,
                 double imbalance_threshold);

}  // namespace remedy::bench

#endif  // REMEDY_BENCH_TRADEOFF_H_
