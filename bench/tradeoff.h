#ifndef REMEDY_BENCH_TRADEOFF_H_
#define REMEDY_BENCH_TRADEOFF_H_

#include <string>

#include "data/dataset.h"

namespace remedy::bench {

struct TradeoffOptions {
  // Workers for the evaluation engine: the remedy planner's per-region
  // fan-out and the (treatment, model) evaluation cells. 1 = serial,
  // <= 0 = every usable CPU. Results are bit-identical for every value;
  // only the wall time changes.
  int threads = 0;
  // When non-empty, the per-cell results and run timings are also written
  // to this path as JSON (same shape as the other BENCH_*.json artifacts).
  std::string json_path;
};

// Shared driver for the fairness-accuracy trade-off figures (Fig. 4 Adult,
// Fig. 5 Law School, Fig. 6 ProPublica):
//   (a/b) fairness index under FPR and FNR for Original vs the Lattice /
//         Leaf / Top identification scopes (remedy = preferential sampling),
//   (c)   model accuracy for the same treatments,
//   (d)   the four pre-processing techniques under the Lattice scope.
// All of DT / RF / LG / NN are evaluated, as in the paper. Every treatment
// train set and the test set are one-hot encoded exactly once; the 28
// independent (treatment, model) cells then run on a pool.
void RunTradeoff(const std::string& dataset_name, const Dataset& data,
                 double imbalance_threshold,
                 const TradeoffOptions& options = {});

}  // namespace remedy::bench

#endif  // REMEDY_BENCH_TRADEOFF_H_
