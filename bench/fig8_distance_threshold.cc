// Reproduces Fig. 8: fairness index (FPR and FNR) and model accuracy under
// the two distance-threshold regimes, T = 1 vs T = |X|, decision tree, on
// ProPublica (|X| = 3) and Adult (|X| = 6).

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/remedy.h"
#include "datagen/adult.h"
#include "datagen/compas.h"

namespace remedy {
namespace {

void Compare(const std::string& name, const Dataset& data, double tau_c,
             int threads, bench::JsonResultWriter* writer) {
  auto [train, test] = bench::Split(data);
  const int num_protected = data.schema().NumProtected();
  std::printf("(%s) decision tree, tau_c = %.1f, |X| = %d\n", name.c_str(),
              tau_c, num_protected);
  TablePrinter table(
      {"T", "fairness index (FPR)", "fairness index (FNR)", "accuracy"});

  bench::EvalResult original =
      bench::Evaluate(train, test, ModelType::kDecisionTree);
  table.AddRow({"original", FormatDouble(original.fairness_index_fpr, 4),
                FormatDouble(original.fairness_index_fnr, 4),
                FormatDouble(original.accuracy, 4)});
  if (writer != nullptr) {
    writer->AddRecord(name,
                      {{"original", 1.0},
                       {"fairness_index_fpr", original.fairness_index_fpr},
                       {"fairness_index_fnr", original.fairness_index_fnr},
                       {"accuracy", original.accuracy}});
  }

  for (double distance : {1.0, static_cast<double>(num_protected)}) {
    RemedyParams params;
    params.ibs.imbalance_threshold = tau_c;
    params.ibs.distance_threshold = distance;
    params.technique = RemedyTechnique::kPreferentialSampling;
    params.planning_threads = threads;
    Dataset remedied = RemedyDataset(train, params).value();
    bench::EvalResult result =
        bench::Evaluate(remedied, test, ModelType::kDecisionTree);
    std::string label = distance == 1.0 ? "T = 1" : "T = |X|";
    table.AddRow({label, FormatDouble(result.fairness_index_fpr, 4),
                  FormatDouble(result.fairness_index_fnr, 4),
                  FormatDouble(result.accuracy, 4)});
    if (writer != nullptr) {
      writer->AddRecord(name,
                        {{"distance_threshold", distance},
                         {"fairness_index_fpr", result.fairness_index_fpr},
                         {"fairness_index_fnr", result.fairness_index_fnr},
                         {"accuracy", result.accuracy}});
    }
  }
  table.Print(std::cout);
  std::printf("\n");
}

}  // namespace
}  // namespace remedy

int main(int argc, char** argv) {
  remedy::bench::PrintBanner(
      "Fig. 8 — fairness index and accuracy under different T",
      "Lin, Gupta & Jagadish, ICDE'24, Figure 8 (DT, ProPublica & Adult)",
      "both T regimes mitigate subgroup unfairness; T = |X| tends to win on "
      "ProPublica (3 protected attributes) while T = 1 is the better choice "
      "on Adult (6), i.e. global class-distribution equalization loses "
      "ground as |X| grows.");
  const int threads = remedy::bench::IntFlagValue(argc, argv, "--threads", 0);
  const std::string json_path = remedy::bench::JsonPathFromArgs(argc, argv);
  remedy::bench::JsonResultWriter writer;
  remedy::bench::JsonResultWriter* sink =
      json_path.empty() ? nullptr : &writer;
  remedy::Compare("ProPublica", remedy::MakeCompas(), 0.1, threads, sink);
  remedy::Compare("Adult", remedy::MakeAdult(), 0.5, threads, sink);
  if (sink != nullptr && writer.WriteFile(json_path)) {
    std::printf("JSON results written to %s\n", json_path.c_str());
  }
  return 0;
}
