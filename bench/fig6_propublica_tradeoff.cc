// Reproduces Fig. 6: the fairness-accuracy trade-off on the ProPublica
// (COMPAS) dataset.

#include "bench_common.h"
#include "datagen/compas.h"
#include "tradeoff.h"

int main(int argc, char** argv) {
  remedy::bench::PrintBanner(
      "Fig. 6 — fairness-accuracy trade-off (ProPublica)",
      "Lin, Gupta & Jagadish, ICDE'24, Figure 6 (tau_c = 0.1, T = 1)",
      "Lattice mitigates FPR and FNR subgroup unfairness simultaneously "
      "for DT / RF / LG / NN with a bounded accuracy decrease.");
  remedy::Dataset data = remedy::MakeCompas();
  remedy::bench::TradeoffOptions options;
  options.threads = remedy::bench::IntFlagValue(argc, argv, "--threads", 0);
  options.json_path = remedy::bench::JsonPathFromArgs(argc, argv);
  remedy::bench::RunTradeoff("ProPublica", data, /*imbalance_threshold=*/0.1,
                             options);
  return 0;
}
