#include "bench_common.h"

#include <sys/resource.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/rng.h"
#include "fairness/fairness_index.h"
#include "ml/metrics.h"

namespace remedy::bench {

std::pair<Dataset, Dataset> Split(const Dataset& data, uint64_t seed) {
  Rng rng(seed);
  return data.TrainTestSplit(0.7, rng);
}

EvalResult Evaluate(const Dataset& train, const Dataset& test, ModelType type,
                    uint64_t seed) {
  ClassifierPtr model = MakeClassifier(type, seed);
  model->Fit(train);
  std::vector<int> predictions = model->PredictAll(test);
  EvalResult result;
  result.fairness_index_fpr =
      ComputeFairnessIndex(test, predictions, Statistic::kFpr);
  result.fairness_index_fnr =
      ComputeFairnessIndex(test, predictions, Statistic::kFnr);
  result.accuracy = Accuracy(test, predictions);
  return result;
}

EvalResult Evaluate(const EncodedMatrix& train, const EncodedMatrix& test,
                    ModelType type, uint64_t seed, int threads) {
  ClassifierPtr model = MakeClassifier(type, seed, threads);
  model->FitEncoded(train);
  std::vector<int> predictions = model->PredictAllEncoded(test);
  EvalResult result;
  result.fairness_index_fpr =
      ComputeFairnessIndex(test.data(), predictions, Statistic::kFpr);
  result.fairness_index_fnr =
      ComputeFairnessIndex(test.data(), predictions, Statistic::kFnr);
  result.accuracy = Accuracy(test.data(), predictions);
  return result;
}

void PrintBanner(const std::string& experiment, const std::string& paper_ref,
                 const std::string& expectation) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Expected shape: %s\n", expectation.c_str());
  std::printf("==============================================================\n\n");
}

std::string FlagValue(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (flag == argv[i]) return argv[i + 1];
  }
  return "";
}

std::string JsonPathFromArgs(int argc, char** argv) {
  return FlagValue(argc, argv, "--json");
}

int IntFlagValue(int argc, char** argv, const std::string& flag,
                 int fallback) {
  const std::string value = FlagValue(argc, argv, flag);
  if (value.empty()) return fallback;
  char* end = nullptr;
  long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') return fallback;
  return static_cast<int>(parsed);
}

bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

int64_t PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;
}

void JsonResultWriter::AddRecord(const std::string& section,
                                 const Record& record) {
  for (auto& [name, records] : sections_) {
    if (name == section) {
      records.push_back(record);
      return;
    }
  }
  sections_.push_back({section, {record}});
}

namespace {

void AppendNumber(std::ostringstream& out, double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    out << static_cast<int64_t>(value);
  } else {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    out << buffer;
  }
}

}  // namespace

std::string JsonResultWriter::ToJson() const {
  std::ostringstream out;
  out << "{\n";
  for (size_t s = 0; s < sections_.size(); ++s) {
    out << "  \"" << sections_[s].first << "\": [\n";
    const std::vector<Record>& records = sections_[s].second;
    for (size_t r = 0; r < records.size(); ++r) {
      out << "    {";
      for (size_t f = 0; f < records[r].size(); ++f) {
        const Field& field = records[r][f];
        out << "\"" << field.key << "\": ";
        if (field.is_text) {
          out << "\"" << field.text << "\"";
        } else {
          AppendNumber(out, field.number);
        }
        if (f + 1 < records[r].size()) out << ", ";
      }
      out << (r + 1 < records.size() ? "},\n" : "}\n");
    }
    out << (s + 1 < sections_.size() ? "  ],\n" : "  ]\n");
  }
  out << "}\n";
  return out.str();
}

bool JsonResultWriter::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << ToJson();
  return static_cast<bool>(out);
}

}  // namespace remedy::bench
