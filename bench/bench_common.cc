#include "bench_common.h"

#include <cstdio>

#include "common/rng.h"
#include "fairness/fairness_index.h"
#include "ml/metrics.h"

namespace remedy::bench {

std::pair<Dataset, Dataset> Split(const Dataset& data, uint64_t seed) {
  Rng rng(seed);
  return data.TrainTestSplit(0.7, rng);
}

EvalResult Evaluate(const Dataset& train, const Dataset& test, ModelType type,
                    uint64_t seed) {
  ClassifierPtr model = MakeClassifier(type, seed);
  model->Fit(train);
  std::vector<int> predictions = model->PredictAll(test);
  EvalResult result;
  result.fairness_index_fpr =
      ComputeFairnessIndex(test, predictions, Statistic::kFpr);
  result.fairness_index_fnr =
      ComputeFairnessIndex(test, predictions, Statistic::kFnr);
  result.accuracy = Accuracy(test, predictions);
  return result;
}

void PrintBanner(const std::string& experiment, const std::string& paper_ref,
                 const std::string& expectation) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Expected shape: %s\n", expectation.c_str());
  std::printf("==============================================================\n\n");
}

}  // namespace remedy::bench
