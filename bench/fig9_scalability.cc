// Reproduces Fig. 9: runtime of IBS identification (Naive vs Optimized) and
// of the remedy algorithm per pre-processing technique, varying (a, b) the
// number of protected attributes — Adult widened with education and
// occupation, as in the paper — and (c, d) the data size at the maximal
// 8 protected attributes.
//
// With `--json <path>` (e.g. BENCH_fig9.json) every timing also lands in a
// machine-readable file, seeding the repo's perf trajectory across PRs.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/ibs_identify.h"
#include "core/remedy.h"
#include "datagen/adult.h"

namespace remedy {
namespace {

double TimeIdentify(const Dataset& data, IbsAlgorithm algorithm) {
  IbsParams params;
  params.imbalance_threshold = 0.5;
  params.algorithm = algorithm;
  WallTimer timer;
  std::vector<BiasedRegion> ibs = IdentifyIbs(data, params);
  double seconds = timer.Seconds();
  (void)ibs;
  return seconds;
}

// Times only the per-region neighbor aggregation — the phase the two
// algorithms actually differ in ((c-1)·d·T lookups vs d·T) — on a hierarchy
// whose node counts are already materialized. With the rollup counting
// engine the end-to-end columns are no longer dominated by group-by
// counting, so the total and phase speedups track each other.
double TimeNeighborPhase(const Dataset& data, IbsAlgorithm algorithm) {
  IbsParams params;
  params.imbalance_threshold = 0.5;
  params.algorithm = algorithm;
  Hierarchy hierarchy(data);
  for (uint32_t mask : hierarchy.BottomUpMasks()) {
    hierarchy.NodeCounts(mask);  // warm the shared counts
  }
  hierarchy.TotalCounts();
  WallTimer timer;
  for (uint32_t mask : hierarchy.BottomUpMasks()) {
    std::vector<BiasedRegion> node = IdentifyIbsInNode(hierarchy, mask,
                                                       params);
    (void)node;
  }
  return timer.Seconds();
}

// Full-lattice counting cost: one leaf scan plus bottom-up rollups, run via
// EagerBuild with the given worker count.
double TimeEagerBuild(const Dataset& data, int threads) {
  WallTimer timer;
  Hierarchy hierarchy(data);
  hierarchy.EagerBuild(threads);
  return timer.Seconds();
}

double TimeRemedy(const Dataset& data, RemedyTechnique technique) {
  RemedyParams params;
  params.ibs.imbalance_threshold = 0.5;
  params.technique = technique;
  WallTimer timer;
  Dataset remedied = RemedyDataset(data, params);
  double seconds = timer.Seconds();
  (void)remedied;
  return seconds;
}

void VaryProtectedAttributes(const Dataset& base,
                             bench::JsonResultWriter* json) {
  std::printf("(a) IBS identification runtime vs #protected attributes\n");
  TablePrinter identify({"|X|", "naive total (s)", "optimized total (s)",
                         "naive nbr-phase (s)", "opt nbr-phase (s)",
                         "phase speedup"});
  for (int count = 3; count <= 8; ++count) {
    Dataset data = base;
    data.SetProtected(AdultScalabilityProtected(count));
    double naive = TimeIdentify(data, IbsAlgorithm::kNaive);
    double optimized = TimeIdentify(data, IbsAlgorithm::kOptimized);
    double naive_phase = TimeNeighborPhase(data, IbsAlgorithm::kNaive);
    double optimized_phase =
        TimeNeighborPhase(data, IbsAlgorithm::kOptimized);
    identify.AddRow(
        {std::to_string(count), FormatDouble(naive, 3),
         FormatDouble(optimized, 3), FormatDouble(naive_phase, 3),
         FormatDouble(optimized_phase, 3),
         FormatDouble(naive_phase / std::max(optimized_phase, 1e-9), 2) +
             "x"});
    json->AddRecord("identify_vs_num_protected",
                    {{"num_protected", static_cast<double>(count)},
                     {"rows", static_cast<double>(data.NumRows())},
                     {"naive_total_s", naive},
                     {"optimized_total_s", optimized},
                     {"naive_neighbor_phase_s", naive_phase},
                     {"optimized_neighbor_phase_s", optimized_phase}});
  }
  identify.Print(std::cout);

  std::printf(
      "\n(b) remedy runtime vs #protected attributes (oversampling excluded "
      "as in the paper: it exhausts the instance-add budget)\n");
  TablePrinter remedy_table(
      {"|X|", "US (s)", "PS (s)", "Massaging (s)"});
  for (int count = 3; count <= 8; ++count) {
    Dataset data = base;
    data.SetProtected(AdultScalabilityProtected(count));
    double undersample = TimeRemedy(data, RemedyTechnique::kUndersample);
    double preferential =
        TimeRemedy(data, RemedyTechnique::kPreferentialSampling);
    double massaging = TimeRemedy(data, RemedyTechnique::kMassaging);
    remedy_table.AddRow(
        {std::to_string(count), FormatDouble(undersample, 3),
         FormatDouble(preferential, 3), FormatDouble(massaging, 3)});
    json->AddRecord("remedy_vs_num_protected",
                    {{"num_protected", static_cast<double>(count)},
                     {"rows", static_cast<double>(data.NumRows())},
                     {"undersample_s", undersample},
                     {"preferential_sampling_s", preferential},
                     {"massaging_s", massaging}});
  }
  remedy_table.Print(std::cout);
}

void VaryDataSize(const Dataset& base, bench::JsonResultWriter* json) {
  std::printf("\n(c) IBS identification runtime vs data size (|X| = 8)\n");
  TablePrinter identify({"rows", "naive total (s)", "optimized total (s)",
                         "naive nbr-phase (s)", "opt nbr-phase (s)",
                         "phase speedup"});
  Rng rng(99);
  for (int rows : {10000, 20000, 30000, 45222}) {
    Dataset data = base.SampleRows(std::min(rows, base.NumRows()), rng);
    data.SetProtected(AdultScalabilityProtected(8));
    double naive = TimeIdentify(data, IbsAlgorithm::kNaive);
    double optimized = TimeIdentify(data, IbsAlgorithm::kOptimized);
    double naive_phase = TimeNeighborPhase(data, IbsAlgorithm::kNaive);
    double optimized_phase =
        TimeNeighborPhase(data, IbsAlgorithm::kOptimized);
    identify.AddRow(
        {std::to_string(data.NumRows()), FormatDouble(naive, 3),
         FormatDouble(optimized, 3), FormatDouble(naive_phase, 3),
         FormatDouble(optimized_phase, 3),
         FormatDouble(naive_phase / std::max(optimized_phase, 1e-9), 2) +
             "x"});
    json->AddRecord("identify_vs_rows",
                    {{"rows", static_cast<double>(data.NumRows())},
                     {"num_protected", 8},
                     {"naive_total_s", naive},
                     {"optimized_total_s", optimized},
                     {"naive_neighbor_phase_s", naive_phase},
                     {"optimized_neighbor_phase_s", optimized_phase}});
  }
  identify.Print(std::cout);

  std::printf("\n(d) remedy runtime vs data size (|X| = 8)\n");
  TablePrinter remedy_table(
      {"rows", "US (s)", "PS (s)", "Massaging (s)"});
  for (int rows : {10000, 20000, 30000, 45222}) {
    Dataset data = base.SampleRows(std::min(rows, base.NumRows()), rng);
    data.SetProtected(AdultScalabilityProtected(8));
    double undersample = TimeRemedy(data, RemedyTechnique::kUndersample);
    double preferential =
        TimeRemedy(data, RemedyTechnique::kPreferentialSampling);
    double massaging = TimeRemedy(data, RemedyTechnique::kMassaging);
    remedy_table.AddRow(
        {std::to_string(data.NumRows()), FormatDouble(undersample, 3),
         FormatDouble(preferential, 3), FormatDouble(massaging, 3)});
    json->AddRecord("remedy_vs_rows",
                    {{"rows", static_cast<double>(data.NumRows())},
                     {"num_protected", 8},
                     {"undersample_s", undersample},
                     {"preferential_sampling_s", preferential},
                     {"massaging_s", massaging}});
  }
  remedy_table.Print(std::cout);
}

void CountingEngine(const Dataset& base, bench::JsonResultWriter* json) {
  std::printf(
      "\n(e) full-lattice counting (leaf scan + rollups, EagerBuild)\n");
  TablePrinter table({"|X|", "1 thread (s)", "default threads (s)"});
  const int default_threads = ThreadPool::DefaultThreads();
  for (int count : {6, 8}) {
    Dataset data = base;
    data.SetProtected(AdultScalabilityProtected(count));
    double serial = TimeEagerBuild(data, 1);
    double parallel = TimeEagerBuild(data, default_threads);
    table.AddRow({std::to_string(count), FormatDouble(serial, 3),
                  FormatDouble(parallel, 3)});
    json->AddRecord("eager_build",
                    {{"num_protected", static_cast<double>(count)},
                     {"rows", static_cast<double>(data.NumRows())},
                     {"serial_s", serial},
                     {"default_threads", static_cast<double>(default_threads)},
                     {"parallel_s", parallel}});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace remedy

int main(int argc, char** argv) {
  remedy::bench::PrintBanner(
      "Fig. 9 — runtime of IBS identification and remedy (Adult)",
      "Lin, Gupta & Jagadish, ICDE'24, Figure 9",
      "runtime grows exponentially with |X| (the lattice does); the "
      "optimized identification stays a multiple faster than the naive one "
      "(the paper reports up to ~5x); remedy time is far below "
      "identification time and grows with the number of biased regions and "
      "with data size.");
  const std::string json_path = remedy::bench::JsonPathFromArgs(argc, argv);
  remedy::bench::JsonResultWriter json;
  remedy::Dataset base = remedy::MakeAdult();
  remedy::VaryProtectedAttributes(base, &json);
  remedy::VaryDataSize(base, &json);
  remedy::CountingEngine(base, &json);
  if (!json_path.empty() && json.WriteFile(json_path)) {
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
