// Reproduces Fig. 9: runtime of IBS identification (Naive vs Optimized) and
// of the remedy algorithm per pre-processing technique, varying (a, b) the
// number of protected attributes — Adult widened with education and
// occupation, as in the paper — and (c, d) the data size at the maximal
// 8 protected attributes.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/ibs_identify.h"
#include "core/remedy.h"
#include "datagen/adult.h"

namespace remedy {
namespace {

double TimeIdentify(const Dataset& data, IbsAlgorithm algorithm) {
  IbsParams params;
  params.imbalance_threshold = 0.5;
  params.algorithm = algorithm;
  WallTimer timer;
  std::vector<BiasedRegion> ibs = IdentifyIbs(data, params);
  double seconds = timer.Seconds();
  (void)ibs;
  return seconds;
}

// Times only the per-region neighbor aggregation — the phase the two
// algorithms actually differ in ((c-1)·d·T lookups vs d·T) — on a hierarchy
// whose node counts are already materialized. The end-to-end columns share
// the group-by counting cost, which dominates in this C++ implementation
// and flattens the gap the paper's Python implementation shows.
double TimeNeighborPhase(const Dataset& data, IbsAlgorithm algorithm) {
  IbsParams params;
  params.imbalance_threshold = 0.5;
  params.algorithm = algorithm;
  Hierarchy hierarchy(data);
  for (uint32_t mask : hierarchy.BottomUpMasks()) {
    hierarchy.NodeCounts(mask);  // warm the shared counts
  }
  hierarchy.TotalCounts();
  WallTimer timer;
  for (uint32_t mask : hierarchy.BottomUpMasks()) {
    std::vector<BiasedRegion> node = IdentifyIbsInNode(hierarchy, mask,
                                                       params);
    (void)node;
  }
  return timer.Seconds();
}

double TimeRemedy(const Dataset& data, RemedyTechnique technique) {
  RemedyParams params;
  params.ibs.imbalance_threshold = 0.5;
  params.technique = technique;
  WallTimer timer;
  Dataset remedied = RemedyDataset(data, params);
  double seconds = timer.Seconds();
  (void)remedied;
  return seconds;
}

void VaryProtectedAttributes(const Dataset& base) {
  std::printf("(a) IBS identification runtime vs #protected attributes\n");
  TablePrinter identify({"|X|", "naive total (s)", "optimized total (s)",
                         "naive nbr-phase (s)", "opt nbr-phase (s)",
                         "phase speedup"});
  for (int count = 3; count <= 8; ++count) {
    Dataset data = base;
    data.SetProtected(AdultScalabilityProtected(count));
    double naive = TimeIdentify(data, IbsAlgorithm::kNaive);
    double optimized = TimeIdentify(data, IbsAlgorithm::kOptimized);
    double naive_phase = TimeNeighborPhase(data, IbsAlgorithm::kNaive);
    double optimized_phase =
        TimeNeighborPhase(data, IbsAlgorithm::kOptimized);
    identify.AddRow(
        {std::to_string(count), FormatDouble(naive, 3),
         FormatDouble(optimized, 3), FormatDouble(naive_phase, 3),
         FormatDouble(optimized_phase, 3),
         FormatDouble(naive_phase / std::max(optimized_phase, 1e-9), 2) +
             "x"});
  }
  identify.Print(std::cout);

  std::printf(
      "\n(b) remedy runtime vs #protected attributes (oversampling excluded "
      "as in the paper: it exhausts the instance-add budget)\n");
  TablePrinter remedy_table(
      {"|X|", "US (s)", "PS (s)", "Massaging (s)"});
  for (int count = 3; count <= 8; ++count) {
    Dataset data = base;
    data.SetProtected(AdultScalabilityProtected(count));
    remedy_table.AddRow(
        {std::to_string(count),
         FormatDouble(TimeRemedy(data, RemedyTechnique::kUndersample), 3),
         FormatDouble(
             TimeRemedy(data, RemedyTechnique::kPreferentialSampling), 3),
         FormatDouble(TimeRemedy(data, RemedyTechnique::kMassaging), 3)});
  }
  remedy_table.Print(std::cout);
}

void VaryDataSize(const Dataset& base) {
  std::printf("\n(c) IBS identification runtime vs data size (|X| = 8)\n");
  TablePrinter identify({"rows", "naive total (s)", "optimized total (s)",
                         "naive nbr-phase (s)", "opt nbr-phase (s)",
                         "phase speedup"});
  Rng rng(99);
  for (int rows : {10000, 20000, 30000, 45222}) {
    Dataset data = base.SampleRows(std::min(rows, base.NumRows()), rng);
    data.SetProtected(AdultScalabilityProtected(8));
    double naive = TimeIdentify(data, IbsAlgorithm::kNaive);
    double optimized = TimeIdentify(data, IbsAlgorithm::kOptimized);
    double naive_phase = TimeNeighborPhase(data, IbsAlgorithm::kNaive);
    double optimized_phase =
        TimeNeighborPhase(data, IbsAlgorithm::kOptimized);
    identify.AddRow(
        {std::to_string(data.NumRows()), FormatDouble(naive, 3),
         FormatDouble(optimized, 3), FormatDouble(naive_phase, 3),
         FormatDouble(optimized_phase, 3),
         FormatDouble(naive_phase / std::max(optimized_phase, 1e-9), 2) +
             "x"});
  }
  identify.Print(std::cout);

  std::printf("\n(d) remedy runtime vs data size (|X| = 8)\n");
  TablePrinter remedy_table(
      {"rows", "US (s)", "PS (s)", "Massaging (s)"});
  for (int rows : {10000, 20000, 30000, 45222}) {
    Dataset data = base.SampleRows(std::min(rows, base.NumRows()), rng);
    data.SetProtected(AdultScalabilityProtected(8));
    remedy_table.AddRow(
        {std::to_string(data.NumRows()),
         FormatDouble(TimeRemedy(data, RemedyTechnique::kUndersample), 3),
         FormatDouble(
             TimeRemedy(data, RemedyTechnique::kPreferentialSampling), 3),
         FormatDouble(TimeRemedy(data, RemedyTechnique::kMassaging), 3)});
  }
  remedy_table.Print(std::cout);
}

}  // namespace
}  // namespace remedy

int main() {
  remedy::bench::PrintBanner(
      "Fig. 9 — runtime of IBS identification and remedy (Adult)",
      "Lin, Gupta & Jagadish, ICDE'24, Figure 9",
      "runtime grows exponentially with |X| (the lattice does); the "
      "optimized identification stays a multiple faster than the naive one "
      "(the paper reports up to ~5x); remedy time is far below "
      "identification time and grows with the number of biased regions and "
      "with data size.");
  remedy::Dataset base = remedy::MakeAdult();
  remedy::VaryProtectedAttributes(base);
  remedy::VaryDataSize(base);
  return 0;
}
