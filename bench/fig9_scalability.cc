// Reproduces Fig. 9: runtime of IBS identification (Naive vs Optimized) and
// of the remedy algorithm per pre-processing technique, varying (a, b) the
// number of protected attributes — Adult widened with education and
// occupation, as in the paper — and (c, d) the data size at the maximal
// 8 protected attributes.
//
// With `--json <path>` (e.g. BENCH_fig9.json) every timing also lands in a
// machine-readable file, seeding the repo's perf trajectory across PRs.
// `--smoke` shrinks the grid (|X| <= 4, 10,000 rows) so the bench doubles
// as a ctest smoke check (label: bench-smoke).

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "common/check.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/counting_backend.h"
#include "core/ibs_identify.h"
#include "core/remedy.h"
#include "data/columnar.h"
#include "datagen/adult.h"
#include "datagen/generator.h"

namespace remedy {
namespace {

struct BenchOptions {
  int min_protected = 3;
  int max_protected = 8;
  std::vector<int> row_grid = {10000, 20000, 30000, 45222};
  int base_rows = 45222;
  int repeats = 3;  // min-of-N for the short eager-build timings
};

// Identification at small |X| finishes in single-digit milliseconds, where
// one scheduler hiccup swamps the real cost and the optimized column can
// appear slower than the naive one. Min-of-`repeats` is the same noise
// discipline TimeEagerBuild already uses.
double TimeIdentify(const Dataset& data, IbsAlgorithm algorithm,
                    int repeats) {
  IbsParams params;
  params.imbalance_threshold = 0.5;
  params.algorithm = algorithm;
  double best = 0.0;
  for (int i = 0; i < std::max(1, repeats); ++i) {
    WallTimer timer;
    std::vector<BiasedRegion> ibs = IdentifyIbs(data, params).value();
    double seconds = timer.Seconds();
    (void)ibs;
    if (i == 0 || seconds < best) best = seconds;
  }
  return best;
}

// Times only the per-region neighbor aggregation — the phase the two
// algorithms actually differ in ((c-1)·d·T lookups vs d·T) — on a hierarchy
// whose node counts are already materialized. With the rollup counting
// engine the end-to-end columns are no longer dominated by group-by
// counting, so the total and phase speedups track each other.
double TimeNeighborPhase(const Dataset& data, IbsAlgorithm algorithm,
                         int repeats) {
  IbsParams params;
  params.imbalance_threshold = 0.5;
  params.algorithm = algorithm;
  Hierarchy hierarchy(data);
  for (uint32_t mask : hierarchy.BottomUpMasks()) {
    hierarchy.NodeCounts(mask);  // warm the shared counts
  }
  hierarchy.TotalCounts();
  double best = 0.0;
  for (int i = 0; i < std::max(1, repeats); ++i) {
    WallTimer timer;
    for (uint32_t mask : hierarchy.BottomUpMasks()) {
      std::vector<BiasedRegion> node = IdentifyIbsInNode(hierarchy, mask,
                                                         params);
      (void)node;
    }
    double seconds = timer.Seconds();
    if (i == 0 || seconds < best) best = seconds;
  }
  return best;
}

// Full-lattice counting cost: one leaf scan plus bottom-up rollups, run via
// EagerBuild with the given worker count. Builds are tens of milliseconds,
// so take the min over a few repeats to shed scheduler noise.
double TimeEagerBuild(const Dataset& data, int threads, int repeats) {
  double best = 0.0;
  for (int i = 0; i < std::max(1, repeats); ++i) {
    WallTimer timer;
    Hierarchy hierarchy(data);
    REMEDY_CHECK(hierarchy.EagerBuild(threads).ok());
    double seconds = timer.Seconds();
    if (i == 0 || seconds < best) best = seconds;
  }
  return best;
}

double TimeRemedy(const Dataset& data, RemedyTechnique technique,
                  RemedyEngine engine) {
  RemedyParams params;
  params.ibs.imbalance_threshold = 0.5;
  params.technique = technique;
  params.engine = engine;
  WallTimer timer;
  Dataset remedied = RemedyDataset(data, params).value();
  double seconds = timer.Seconds();
  (void)remedied;
  return seconds;
}

// One remedy timing row: the four techniques on the incremental engine,
// plus the rebuild reference for the techniques it can afford (oversampling
// grows the dataset by millions of rows; copying it per touched node is the
// exact pathology the incremental engine removes, so the rebuild column
// skips it).
struct RemedyTimings {
  double oversample = 0.0;
  double undersample = 0.0;
  double preferential = 0.0;
  double massaging = 0.0;
  double rebuild_undersample = 0.0;
  double rebuild_preferential = 0.0;
  double rebuild_massaging = 0.0;

  double IncrementalTotal() const {
    return oversample + undersample + preferential + massaging;
  }
  double RebuildTotal() const {
    return rebuild_undersample + rebuild_preferential + rebuild_massaging;
  }
};

RemedyTimings TimeAllRemedies(const Dataset& data) {
  RemedyTimings t;
  t.oversample = TimeRemedy(data, RemedyTechnique::kOversample,
                            RemedyEngine::kIncremental);
  t.undersample = TimeRemedy(data, RemedyTechnique::kUndersample,
                             RemedyEngine::kIncremental);
  t.preferential = TimeRemedy(data, RemedyTechnique::kPreferentialSampling,
                              RemedyEngine::kIncremental);
  t.massaging = TimeRemedy(data, RemedyTechnique::kMassaging,
                           RemedyEngine::kIncremental);
  t.rebuild_undersample = TimeRemedy(data, RemedyTechnique::kUndersample,
                                     RemedyEngine::kRebuild);
  t.rebuild_preferential = TimeRemedy(
      data, RemedyTechnique::kPreferentialSampling, RemedyEngine::kRebuild);
  t.rebuild_massaging = TimeRemedy(data, RemedyTechnique::kMassaging,
                                   RemedyEngine::kRebuild);
  return t;
}

bench::JsonResultWriter::Record RemedyRecord(const RemedyTimings& t,
                                             int num_protected, int rows) {
  return {{"num_protected", static_cast<double>(num_protected)},
          {"rows", static_cast<double>(rows)},
          {"oversample_s", t.oversample},
          {"undersample_s", t.undersample},
          {"preferential_sampling_s", t.preferential},
          {"massaging_s", t.massaging},
          {"undersample_rebuild_s", t.rebuild_undersample},
          {"preferential_sampling_rebuild_s", t.rebuild_preferential},
          {"massaging_rebuild_s", t.rebuild_massaging},
          {"remedy_incremental_s", t.IncrementalTotal()},
          {"remedy_rebuild_s", t.RebuildTotal()}};
}

void AddRemedyRow(TablePrinter& table, const std::string& label,
                  const RemedyTimings& t) {
  // Speedup compares the engines on the techniques both columns run
  // (US + PS + Massaging; the rebuild column skips oversampling).
  const double incremental_comparable =
      t.undersample + t.preferential + t.massaging;
  table.AddRow({label, FormatDouble(t.oversample, 3),
                FormatDouble(t.undersample, 3),
                FormatDouble(t.preferential, 3),
                FormatDouble(t.massaging, 3),
                FormatDouble(t.RebuildTotal(), 3),
                FormatDouble(t.RebuildTotal() /
                                 std::max(incremental_comparable, 1e-9),
                             2) +
                    "x"});
}

void VaryProtectedAttributes(const Dataset& base, const BenchOptions& opts,
                             bench::JsonResultWriter* json) {
  std::printf("(a) IBS identification runtime vs #protected attributes\n");
  TablePrinter identify({"|X|", "naive total (s)", "optimized total (s)",
                         "naive nbr-phase (s)", "opt nbr-phase (s)",
                         "phase speedup"});
  for (int count = opts.min_protected; count <= opts.max_protected; ++count) {
    Dataset data = base;
    data.SetProtected(AdultScalabilityProtected(count));
    double naive = TimeIdentify(data, IbsAlgorithm::kNaive, opts.repeats);
    double optimized =
        TimeIdentify(data, IbsAlgorithm::kOptimized, opts.repeats);
    double naive_phase =
        TimeNeighborPhase(data, IbsAlgorithm::kNaive, opts.repeats);
    double optimized_phase =
        TimeNeighborPhase(data, IbsAlgorithm::kOptimized, opts.repeats);
    identify.AddRow(
        {std::to_string(count), FormatDouble(naive, 3),
         FormatDouble(optimized, 3), FormatDouble(naive_phase, 3),
         FormatDouble(optimized_phase, 3),
         FormatDouble(naive_phase / std::max(optimized_phase, 1e-9), 2) +
             "x"});
    json->AddRecord("identify_vs_num_protected",
                    {{"num_protected", static_cast<double>(count)},
                     {"rows", static_cast<double>(data.NumRows())},
                     {"naive_total_s", naive},
                     {"optimized_total_s", optimized},
                     {"naive_neighbor_phase_s", naive_phase},
                     {"optimized_neighbor_phase_s", optimized_phase}});
  }
  identify.Print(std::cout);

  std::printf(
      "\n(b) remedy runtime vs #protected attributes (incremental engine; "
      "rebuild column sums US+PS+Massaging on the rebuild reference)\n");
  TablePrinter remedy_table({"|X|", "OS (s)", "US (s)", "PS (s)",
                             "Massaging (s)", "rebuild US+PS+M (s)",
                             "speedup"});
  for (int count = opts.min_protected; count <= opts.max_protected; ++count) {
    Dataset data = base;
    data.SetProtected(AdultScalabilityProtected(count));
    RemedyTimings t = TimeAllRemedies(data);
    AddRemedyRow(remedy_table, std::to_string(count), t);
    json->AddRecord("remedy_vs_num_protected",
                    RemedyRecord(t, count, data.NumRows()));
  }
  remedy_table.Print(std::cout);
}

void VaryDataSize(const Dataset& base, const BenchOptions& opts,
                  bench::JsonResultWriter* json) {
  const int max_protected = opts.max_protected;
  std::printf("\n(c) IBS identification runtime vs data size (|X| = %d)\n",
              max_protected);
  TablePrinter identify({"rows", "naive total (s)", "optimized total (s)",
                         "naive nbr-phase (s)", "opt nbr-phase (s)",
                         "phase speedup"});
  Rng rng(99);
  for (int rows : opts.row_grid) {
    Dataset data = base.SampleRows(std::min(rows, base.NumRows()), rng);
    data.SetProtected(AdultScalabilityProtected(max_protected));
    double naive = TimeIdentify(data, IbsAlgorithm::kNaive, opts.repeats);
    double optimized =
        TimeIdentify(data, IbsAlgorithm::kOptimized, opts.repeats);
    double naive_phase =
        TimeNeighborPhase(data, IbsAlgorithm::kNaive, opts.repeats);
    double optimized_phase =
        TimeNeighborPhase(data, IbsAlgorithm::kOptimized, opts.repeats);
    identify.AddRow(
        {std::to_string(data.NumRows()), FormatDouble(naive, 3),
         FormatDouble(optimized, 3), FormatDouble(naive_phase, 3),
         FormatDouble(optimized_phase, 3),
         FormatDouble(naive_phase / std::max(optimized_phase, 1e-9), 2) +
             "x"});
    json->AddRecord("identify_vs_rows",
                    {{"rows", static_cast<double>(data.NumRows())},
                     {"num_protected", static_cast<double>(max_protected)},
                     {"naive_total_s", naive},
                     {"optimized_total_s", optimized},
                     {"naive_neighbor_phase_s", naive_phase},
                     {"optimized_neighbor_phase_s", optimized_phase}});
  }
  identify.Print(std::cout);

  std::printf("\n(d) remedy runtime vs data size (|X| = %d)\n",
              max_protected);
  TablePrinter remedy_table({"rows", "OS (s)", "US (s)", "PS (s)",
                             "Massaging (s)", "rebuild US+PS+M (s)",
                             "speedup"});
  for (int rows : opts.row_grid) {
    Dataset data = base.SampleRows(std::min(rows, base.NumRows()), rng);
    data.SetProtected(AdultScalabilityProtected(max_protected));
    RemedyTimings t = TimeAllRemedies(data);
    AddRemedyRow(remedy_table, std::to_string(data.NumRows()), t);
    json->AddRecord("remedy_vs_rows",
                    RemedyRecord(t, max_protected, data.NumRows()));
  }
  remedy_table.Print(std::cout);
}

void CountingEngine(const Dataset& base, const BenchOptions& opts,
                    bench::JsonResultWriter* json) {
  std::printf(
      "\n(e) full-lattice counting (leaf scan + rollups, EagerBuild)\n");
  TablePrinter table({"|X|", "1 thread (s)", "default threads (s)"});
  const int default_threads = ThreadPool::DefaultThreads();
  for (int count : {opts.max_protected - 2, opts.max_protected}) {
    if (count < 1) continue;
    Dataset data = base;
    data.SetProtected(AdultScalabilityProtected(count));
    double serial = TimeEagerBuild(data, 1, opts.repeats);
    double parallel = TimeEagerBuild(data, default_threads, opts.repeats);
    table.AddRow({std::to_string(count), FormatDouble(serial, 3),
                  FormatDouble(parallel, 3)});
    json->AddRecord("eager_build",
                    {{"num_protected", static_cast<double>(count)},
                     {"rows", static_cast<double>(data.NumRows())},
                     {"serial_s", serial},
                     {"default_threads", static_cast<double>(default_threads)},
                     {"parallel_s", parallel}});
  }
  table.Print(std::cout);
}

// Order-sensitive FNV-1a digest of an identification result: covers every
// region's pattern and both count pairs, so two runs agree iff their IBS
// outputs are identical region for region.
uint64_t IbsDigest(const std::vector<BiasedRegion>& ibs) {
  uint64_t h = 14695981039346656037ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(ibs.size());
  for (const BiasedRegion& region : ibs) {
    for (int i = 0; i < region.pattern.Arity(); ++i) {
      mix(static_cast<uint64_t>(
          static_cast<int64_t>(region.pattern.Value(i))));
    }
    mix(static_cast<uint64_t>(region.counts.positives));
    mix(static_cast<uint64_t>(region.counts.negatives));
    mix(static_cast<uint64_t>(region.neighbor_counts.positives));
    mix(static_cast<uint64_t>(region.neighbor_counts.negatives));
  }
  return h;
}

// (f) the large-row backend sweep: for each requested row count, stream an
// Adult-schema instance (|X| = 8) into a columnar shard store — the full
// Dataset never materializes — and identify its IBS once per counting
// backend. All backends must produce the identical result (checked by
// digest; a mismatch is a hard failure). Returns the number of mismatches.
int SweepRowsBackends(const std::vector<int64_t>& rows_list,
                      bench::JsonResultWriter* json) {
  std::printf(
      "\n(f) IBS identification per counting backend (|X| = 8, streamed "
      "columnar store)\n");
  TablePrinter table({"rows", "shards", "backend", "threads", "identify (s)",
                      "digest", "peak RSS (MB)"});
  const int threads = ThreadPool::DefaultThreads();
  int mismatches = 0;
  for (int64_t rows : rows_list) {
    SyntheticSpec spec = AdultSpec(static_cast<int>(rows));
    DataSchema schema = spec.MakeSchema();
    spec.protected_indices.clear();
    for (const std::string& name : AdultScalabilityProtected(8)) {
      spec.protected_indices.push_back(schema.AttributeIndex(name));
    }
    WallTimer generate_timer;
    ColumnarShardStore store = GenerateSyntheticStore(spec, /*seed=*/42);
    const double generate_s = generate_timer.Seconds();
    uint64_t reference_digest = 0;
    for (CountingBackendKind kind :
         {CountingBackendKind::kScalar, CountingBackendKind::kSimd,
          CountingBackendKind::kSharded}) {
      IbsParams params;
      params.imbalance_threshold = 0.5;
      params.backend = kind;
      params.backend_threads = threads;
      WallTimer timer;
      std::vector<BiasedRegion> ibs = IdentifyIbs(store, params).value();
      const double identify_s = timer.Seconds();
      const uint64_t digest = IbsDigest(ibs);
      if (kind == CountingBackendKind::kScalar) {
        reference_digest = digest;
      } else if (digest != reference_digest) {
        ++mismatches;
        std::fprintf(stderr,
                     "backend digest mismatch at %lld rows: %s != scalar\n",
                     static_cast<long long>(rows), CountingBackendName(kind));
      }
      const int64_t peak_rss = bench::PeakRssBytes();
      char digest_hex[32];
      std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                    static_cast<unsigned long long>(digest));
      table.AddRow({std::to_string(rows), std::to_string(store.NumShards()),
                    CountingBackendName(kind), std::to_string(threads),
                    FormatDouble(identify_s, 3), digest_hex,
                    std::to_string(peak_rss >> 20)});
      json->AddRecord(
          "identify_vs_rows_backends",
          {{"rows", static_cast<double>(store.NumRows())},
           {"num_protected", 8.0},
           {"backend", CountingBackendName(kind)},
           {"num_shards", static_cast<double>(store.NumShards())},
           {"threads", static_cast<double>(threads)},
           {"generate_s", generate_s},
           {"identify_s", identify_s},
           {"digest", digest_hex},
           {"digests_agree", digest == reference_digest ? 1.0 : 0.0},
           {"peak_rss_bytes", static_cast<double>(peak_rss)}});
    }
  }
  table.Print(std::cout);
  if (mismatches == 0) {
    std::printf("all backends agree on every digest\n");
  }
  return mismatches;
}

// (g) the out-of-core sweep: stream the same Adult-schema rows (|X| = 8)
// through the spill-mode builder into per-shard files under --store-dir,
// then identify the IBS counting straight off the memory-mapped files. Up
// to the in-memory verify limit the run also builds the in-memory store and
// checks the two digests are byte-identical (the out-of-core acceptance
// proof); beyond it — the 100M-row cell — only the mmap path runs, and the
// peak-RSS column is the evidence that counting never materializes the
// store. Returns the number of digest mismatches.
int SweepOutOfCore(const std::vector<int64_t>& rows_list,
                   const std::string& store_dir,
                   bench::JsonResultWriter* json) {
  std::printf(
      "\n(g) out-of-core IBS identification (|X| = 8, mmap-backed spilled "
      "store)\n");
  TablePrinter table({"rows", "shards", "store (MB)", "spill (s)",
                      "identify (s)", "digest", "in-mem match",
                      "peak RSS (MB)"});
  const int threads = ThreadPool::DefaultThreads();
  constexpr int64_t kInMemoryVerifyLimit = 10'000'000;
  int mismatches = 0;
  for (int64_t rows : rows_list) {
    SyntheticSpec spec = AdultSpec(static_cast<int>(rows));
    DataSchema schema = spec.MakeSchema();
    spec.protected_indices.clear();
    for (const std::string& name : AdultScalabilityProtected(8)) {
      spec.protected_indices.push_back(schema.AttributeIndex(name));
    }
    const std::string dir = store_dir + "/oocore-" + std::to_string(rows);
    WallTimer spill_timer;
    StatusOr<ColumnarShardStore> spilled =
        GenerateSyntheticSpilledStore(spec, /*seed=*/42, dir);
    REMEDY_CHECK(spilled.ok()) << spilled.status().ToString();
    const double spill_s = spill_timer.Seconds();
    const ColumnarShardStore& store = spilled.value();
    IbsParams params;
    params.imbalance_threshold = 0.5;
    params.backend = CountingBackendKind::kSharded;
    params.backend_threads = threads;
    WallTimer timer;
    std::vector<BiasedRegion> ibs = IdentifyIbs(store, params).value();
    const double identify_s = timer.Seconds();
    const uint64_t digest = IbsDigest(ibs);
    std::string match = "n/a";
    double matches_inmemory = -1.0;
    if (rows <= kInMemoryVerifyLimit) {
      ColumnarShardStore in_memory = GenerateSyntheticStore(spec, /*seed=*/42);
      std::vector<BiasedRegion> reference =
          IdentifyIbs(in_memory, params).value();
      const bool ok = IbsDigest(reference) == digest;
      matches_inmemory = ok ? 1.0 : 0.0;
      match = ok ? "yes" : "NO";
      if (!ok) {
        ++mismatches;
        std::fprintf(stderr,
                     "out-of-core digest mismatch at %lld rows: mmap-backed "
                     "!= in-memory\n",
                     static_cast<long long>(rows));
      }
    }
    const int64_t store_bytes = store.SpilledBytes();
    const int64_t peak_rss = bench::PeakRssBytes();
    char digest_hex[32];
    std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                  static_cast<unsigned long long>(digest));
    table.AddRow({std::to_string(rows), std::to_string(store.NumShards()),
                  std::to_string(store_bytes >> 20), FormatDouble(spill_s, 3),
                  FormatDouble(identify_s, 3), digest_hex, match,
                  std::to_string(peak_rss >> 20)});
    json->AddRecord("identify_oocore",
                    {{"rows", static_cast<double>(store.NumRows())},
                     {"num_protected", 8.0},
                     {"backend", "sharded"},
                     {"num_shards", static_cast<double>(store.NumShards())},
                     {"threads", static_cast<double>(threads)},
                     {"spill_s", spill_s},
                     {"identify_s", identify_s},
                     {"digest", digest_hex},
                     {"matches_inmemory", matches_inmemory},
                     {"store_bytes", static_cast<double>(store_bytes)},
                     {"peak_rss_bytes", static_cast<double>(peak_rss)}});
  }
  table.Print(std::cout);
  if (mismatches == 0) {
    std::printf("mmap-backed counting matches in-memory on every verified "
                "digest\n");
  }
  return mismatches;
}

std::vector<int64_t> ParseRowsFlag(const std::string& value) {
  std::vector<int64_t> rows;
  for (const std::string& field : Split(value, ',')) {
    if (field.empty()) continue;
    rows.push_back(std::atoll(field.c_str()));
    REMEDY_CHECK(rows.back() > 0) << "bad --rows value '" << field << "'";
  }
  return rows;
}

}  // namespace
}  // namespace remedy

int main(int argc, char** argv) {
  remedy::bench::PrintBanner(
      "Fig. 9 — runtime of IBS identification and remedy (Adult)",
      "Lin, Gupta & Jagadish, ICDE'24, Figure 9",
      "runtime grows exponentially with |X| (the lattice does); the "
      "optimized identification stays a multiple faster than the naive one "
      "(the paper reports up to ~5x); the incremental remedy engine stays a "
      "multiple faster than the rebuild reference and far below "
      "identification time.");
  remedy::BenchOptions opts;
  if (remedy::bench::HasFlag(argc, argv, "--smoke")) {
    opts.min_protected = 3;
    opts.max_protected = 4;
    opts.row_grid = {10000};
    opts.base_rows = 10000;
    opts.repeats = 1;
  }
  const std::string json_path = remedy::bench::JsonPathFromArgs(argc, argv);
  const std::string metrics_path =
      remedy::bench::FlagValue(argc, argv, "--metrics-json");
  // --rows 1000000,10000000 adds the per-backend sweep on streamed
  // columnar stores; --sweep-only skips the (a)-(e) Dataset sections.
  const std::vector<int64_t> sweep_rows =
      remedy::ParseRowsFlag(remedy::bench::FlagValue(argc, argv, "--rows"));
  const bool sweep_only = remedy::bench::HasFlag(argc, argv, "--sweep-only");
  // --oocore-rows 10000000,100000000 --store-dir DIR adds the out-of-core
  // sweep: spill to per-shard files under DIR, count mmap-backed.
  const std::vector<int64_t> oocore_rows = remedy::ParseRowsFlag(
      remedy::bench::FlagValue(argc, argv, "--oocore-rows"));
  const std::string store_dir =
      remedy::bench::FlagValue(argc, argv, "--store-dir");
  if (!oocore_rows.empty() && store_dir.empty()) {
    std::fprintf(stderr, "--oocore-rows requires --store-dir\n");
    return 1;
  }
  remedy::bench::JsonResultWriter json;
  if (!sweep_only) {
    remedy::Dataset base = remedy::MakeAdult(opts.base_rows);
    remedy::VaryProtectedAttributes(base, opts, &json);
    remedy::VaryDataSize(base, opts, &json);
    remedy::CountingEngine(base, opts, &json);
  }
  int mismatches = 0;
  if (!sweep_rows.empty()) {
    mismatches = remedy::SweepRowsBackends(sweep_rows, &json);
  }
  if (!oocore_rows.empty()) {
    mismatches += remedy::SweepOutOfCore(oocore_rows, store_dir, &json);
  }
  if (!json_path.empty() && json.WriteFile(json_path)) {
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  if (!metrics_path.empty()) {
    remedy::Status written = remedy::WriteMetricsJsonFile(metrics_path);
    if (written.ok()) {
      std::printf("wrote pipeline metrics %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "metrics write failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
  }
  return mismatches == 0 ? 0 : 1;
}
