#ifndef REMEDY_BENCH_BENCH_COMMON_H_
#define REMEDY_BENCH_BENCH_COMMON_H_

#include <string>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "fairness/divergence.h"
#include "ml/model_factory.h"

namespace remedy::bench {

// The paper's split protocol: 70% train / 30% test, remedy applied to the
// training set only.
std::pair<Dataset, Dataset> Split(const Dataset& data, uint64_t seed = 1234);

// One model's evaluation under the paper's metrics.
struct EvalResult {
  double fairness_index_fpr = 0.0;
  double fairness_index_fnr = 0.0;
  double accuracy = 0.0;
};

// Trains `type` on `train`, evaluates on `test`.
EvalResult Evaluate(const Dataset& train, const Dataset& test, ModelType type,
                    uint64_t seed = 7);

// Pretty banner for each experiment binary.
void PrintBanner(const std::string& experiment, const std::string& paper_ref,
                 const std::string& expectation);

}  // namespace remedy::bench

#endif  // REMEDY_BENCH_BENCH_COMMON_H_
