#ifndef REMEDY_BENCH_BENCH_COMMON_H_
#define REMEDY_BENCH_BENCH_COMMON_H_

#include <string>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "data/encoding.h"
#include "fairness/divergence.h"
#include "ml/model_factory.h"

namespace remedy::bench {

// The paper's split protocol: 70% train / 30% test, remedy applied to the
// training set only.
std::pair<Dataset, Dataset> Split(const Dataset& data, uint64_t seed = 1234);

// One model's evaluation under the paper's metrics.
struct EvalResult {
  double fairness_index_fpr = 0.0;
  double fairness_index_fnr = 0.0;
  double accuracy = 0.0;
};

// Trains `type` on `train`, evaluates on `test`.
EvalResult Evaluate(const Dataset& train, const Dataset& test, ModelType type,
                    uint64_t seed = 7);

// Same evaluation over pre-built encodings: the one-hot caches are built
// once per split and shared across every model evaluated on it. `threads`
// is the in-model worker count (see MakeClassifier); results are
// bit-identical to the Dataset form for every thread count.
EvalResult Evaluate(const EncodedMatrix& train, const EncodedMatrix& test,
                    ModelType type, uint64_t seed = 7, int threads = 1);

// Integer flag value (e.g. "--threads 8"): `fallback` when the flag is
// absent or not a number.
int IntFlagValue(int argc, char** argv, const std::string& flag,
                 int fallback);

// Pretty banner for each experiment binary.
void PrintBanner(const std::string& experiment, const std::string& paper_ref,
                 const std::string& expectation);

// Returns the value following `flag` (e.g. "--metrics-json out.json"), or
// "" when the flag is absent or has no value.
std::string FlagValue(int argc, char** argv, const std::string& flag);

// Returns the value following a `--json <path>` argument, or "" when the
// flag is absent. Lets experiment binaries emit machine-readable results
// next to their console tables.
std::string JsonPathFromArgs(int argc, char** argv);

// True when `flag` (e.g. "--smoke") appears among the arguments.
bool HasFlag(int argc, char** argv, const std::string& flag);

// Peak resident set size of this process so far, in bytes (getrusage
// ru_maxrss). High-water mark, not current usage — record it right after
// the phase being measured.
int64_t PeakRssBytes();

// Minimal machine-readable results sink: named sections, each an array of
// flat records (numbers, plus the occasional string such as a backend
// name), serialized as one JSON object. Covers everything the bench tables
// report without pulling in a JSON dependency.
class JsonResultWriter {
 public:
  // One record field. The converting constructors keep the existing
  // brace-list call sites ({"rows", 1.0}) compiling unchanged while
  // admitting {"backend", "sharded"}.
  struct Field {
    Field(std::string k, double v) : key(std::move(k)), number(v) {}
    Field(std::string k, std::string v)
        : key(std::move(k)), text(std::move(v)), is_text(true) {}
    Field(std::string k, const char* v)
        : key(std::move(k)), text(v), is_text(true) {}

    std::string key;
    double number = 0.0;
    std::string text;
    bool is_text = false;
  };
  using Record = std::vector<Field>;

  // Appends `record` to `section` (sections appear in first-use order).
  void AddRecord(const std::string& section, const Record& record);

  // Serializes all sections, e.g. {"section": [{"k": 1, ...}, ...], ...}.
  std::string ToJson() const;

  // Writes ToJson() to `path`. Returns false (and prints to stderr) on I/O
  // failure.
  bool WriteFile(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::vector<Record>>> sections_;
};

}  // namespace remedy::bench

#endif  // REMEDY_BENCH_BENCH_COMMON_H_
