// Steady-state serving bench: small-batch ingest over a 1M+-row lattice at
// the paper's maximal |X| = 8, measuring the identify-epoch latency of the
// dirty-region incremental path (core/ibs_incremental.h) against the
// from-scratch sweep the daemon's --identify-mode=full runs — per epoch,
// with digest-checked parity (the bench exits nonzero the moment the two
// disagree), plus the resulting steady-state batches/s.
//
// With `--json <path>` (default BENCH_serve.json) every per-epoch timing
// and the p50/p99/speedup summary land in a machine-readable file.
// `--smoke` shrinks the lattice (120k rows, 25 epochs) so the bench doubles
// as the serve_steady_smoke ctest (label: bench-smoke), which still
// asserts incremental-equals-full digests at every epoch.
//
// Flags: --rows N, --epochs N, --batch N (rows per delta batch, <= 1000),
// --leaves N (distinct subgroups each batch touches), --threads N
// (EagerBuild fan-out), --json PATH, --metrics-json PATH, --smoke.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/hierarchy.h"
#include "core/ibs_identify.h"
#include "core/ibs_incremental.h"
#include "data/columnar.h"
#include "datagen/generator.h"
#include "datagen/synthetic_spec.h"

namespace remedy {
namespace {

using bench::JsonResultWriter;

// |X| = 8 protected attributes of cardinality 4: 65,536 leaf combinations
// and 5^8 = 390,625 regions across the 256-node lattice — the serving
// regime where a full per-epoch sweep is real work and a small batch
// touches a sliver of it.
SyntheticSpec ServingSpec(int rows) {
  SyntheticSpec spec;
  spec.name = "serve_steady";
  for (int i = 0; i < 8; ++i) {
    const std::string name = "x" + std::to_string(i);
    spec.attributes.push_back(IndependentAttribute(
        AttributeSchema(name, {name + "_0", name + "_1", name + "_2",
                               name + "_3"}),
        {4.0, 3.0, 2.0, 1.0}));
    spec.protected_indices.push_back(i);
  }
  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("f", {"f0", "f1"}), {1.0, 1.0}));
  spec.num_rows = rows;
  spec.base_logit = -0.4;
  spec.label_terms = {{0, 0, 0.8}, {1, 3, -0.6}, {2, 1, 0.4}};
  spec.injections = {{{0, 1, -1, -1, -1, -1, -1, -1, -1}, 1.2},
                     {{-1, -1, 2, 3, -1, -1, -1, -1, -1}, -1.0}};
  spec.Validate();
  return spec;
}

// The full sweep the daemon's kFull mode runs per identify epoch.
std::vector<BiasedRegion> FullSweep(Hierarchy& hierarchy,
                                    const IbsParams& params) {
  std::vector<BiasedRegion> ibs;
  for (uint32_t mask : ScopeMasks(hierarchy, params.scope)) {
    std::vector<BiasedRegion> in_node =
        IdentifyIbsInNode(hierarchy, mask, params);
    ibs.insert(ibs.end(), in_node.begin(), in_node.end());
  }
  return ibs;
}

// One small ingest batch: `rows` label observations spread over `leaves`
// distinct existing subgroups — the steady-state shape where a delta batch
// touches a handful of regions of a huge lattice.
std::vector<Hierarchy::LeafDelta> IngestBatch(const NodeTable& leaf_table,
                                              int rows, int leaves,
                                              Rng& rng) {
  std::vector<Hierarchy::LeafDelta> deltas;
  const int distinct = std::max(1, leaves);
  const int per_leaf = std::max(1, rows / distinct);
  for (int i = 0; i < distinct; ++i) {
    const uint64_t key =
        std::next(leaf_table.begin(),
                  rng.UniformInt(static_cast<int>(leaf_table.size())))
            ->first;
    const int positives = rng.UniformInt(per_leaf + 1);
    deltas.push_back({key, static_cast<int64_t>(positives),
                      static_cast<int64_t>(per_leaf - positives)});
  }
  // Pre-aggregate duplicates (ApplyDeltas' contract).
  std::sort(deltas.begin(), deltas.end(),
            [](const Hierarchy::LeafDelta& a, const Hierarchy::LeafDelta& b) {
              return a.leaf_key < b.leaf_key;
            });
  std::vector<Hierarchy::LeafDelta> merged;
  for (const Hierarchy::LeafDelta& delta : deltas) {
    if (!merged.empty() && merged.back().leaf_key == delta.leaf_key) {
      merged.back().delta_positives += delta.delta_positives;
      merged.back().delta_negatives += delta.delta_negatives;
    } else {
      merged.push_back(delta);
    }
  }
  return merged;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

double Sum(const std::vector<double>& values) {
  double total = 0.0;
  for (double v : values) total += v;
  return total;
}

int Run(int argc, char** argv) {
  const bool smoke = bench::HasFlag(argc, argv, "--smoke");
  const int rows =
      bench::IntFlagValue(argc, argv, "--rows", smoke ? 120000 : 1200000);
  const int epochs =
      bench::IntFlagValue(argc, argv, "--epochs", smoke ? 25 : 200);
  const int batch_rows = bench::IntFlagValue(argc, argv, "--batch", 1000);
  const int batch_leaves = bench::IntFlagValue(argc, argv, "--leaves", 8);
  const int threads = bench::IntFlagValue(argc, argv, "--threads", 0);
  std::string json_path = bench::JsonPathFromArgs(argc, argv);
  if (json_path.empty()) json_path = "BENCH_serve.json";
  REMEDY_CHECK(batch_rows <= 1000)
      << "steady-state batches are <= 1k rows by definition";

  bench::PrintBanner(
      "serve_steady: incremental vs full identify in the serving hot path",
      "serving-layer extension of Sec. V (Fig. 9's |X| = 8 regime)",
      "per-epoch digests match; incremental p50 latency >= 5x lower");

  std::printf("lattice: %d rows, |X| = 8 (cardinality 4), %d epochs of "
              "%d-row batches over %d subgroups each\n",
              rows, epochs, batch_rows, batch_leaves);

  const SyntheticSpec spec = ServingSpec(rows);
  ColumnarShardStore store = GenerateSyntheticStore(spec, /*seed=*/17);
  Hierarchy hierarchy(store);
  WallTimer build_timer;
  REMEDY_CHECK(hierarchy.EagerBuild(threads).ok()) << "EagerBuild failed";
  const double build_s = build_timer.Seconds();
  const NodeTable& leaf_table = hierarchy.NodeCounts(hierarchy.LeafMask());
  std::printf("built in %.2fs: %zu populated leaves\n", build_s,
              leaf_table.size());

  IbsParams params;
  params.imbalance_threshold = 0.5;
  params.distance_threshold = 1.0;
  params.min_region_size = 30;

  IncrementalIbsState state;
  WallTimer warm_timer;
  std::vector<BiasedRegion> warm = state.Identify(hierarchy, params);
  const double cold_full_s = warm_timer.Seconds();
  std::printf("cold full pass: %.1fms, %zu biased regions\n",
              cold_full_s * 1e3, warm.size());

  JsonResultWriter json;
  Rng rng(0xba7c4);
  std::vector<double> full_ms;
  std::vector<double> incr_ms;
  std::vector<double> apply_ms;
  int64_t rescored_total = 0;
  int64_t cached_total = 0;
  bool all_match = true;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const std::vector<Hierarchy::LeafDelta> batch =
        IngestBatch(leaf_table, batch_rows, batch_leaves, rng);
    WallTimer apply_timer;
    hierarchy.ApplyDeltas(batch, /*insert_missing=*/true);
    apply_ms.push_back(apply_timer.Seconds() * 1e3);

    // Full first: it reads the hierarchy without consuming the dirty set,
    // so both paths see the identical epoch state.
    WallTimer full_timer;
    const std::vector<BiasedRegion> full = FullSweep(hierarchy, params);
    full_ms.push_back(full_timer.Seconds() * 1e3);

    WallTimer incr_timer;
    const std::vector<BiasedRegion> incremental =
        state.Identify(hierarchy, params);
    incr_ms.push_back(incr_timer.Seconds() * 1e3);

    const uint64_t full_digest = IbsSetDigest(full);
    const uint64_t incr_digest = IbsSetDigest(incremental);
    const bool match =
        full_digest == incr_digest && state.last_stats().incremental;
    all_match = all_match && match;
    rescored_total += state.last_stats().rescored_regions;
    cached_total += state.last_stats().cached_regions;
    json.AddRecord(
        "epochs",
        {{"epoch", static_cast<double>(epoch)},
         {"batch_rows", static_cast<double>(batch_rows)},
         {"dirty_leaves", static_cast<double>(state.last_stats().dirty_leaves)},
         {"rescored_regions",
          static_cast<double>(state.last_stats().rescored_regions)},
         {"cached_regions",
          static_cast<double>(state.last_stats().cached_regions)},
         {"apply_ms", apply_ms.back()},
         {"full_identify_ms", full_ms.back()},
         {"incremental_identify_ms", incr_ms.back()},
         {"digest", static_cast<double>(incr_digest)},
         {"digests_match", match ? 1.0 : 0.0}});
    if (!match) {
      std::fprintf(stderr,
                   "PARITY FAILURE at epoch %d: full %llu vs incremental "
                   "%llu (incremental pass: %s)\n",
                   epoch, static_cast<unsigned long long>(full_digest),
                   static_cast<unsigned long long>(incr_digest),
                   state.last_stats().incremental ? "yes" : "fell back");
    }
  }

  const double full_p50 = Percentile(full_ms, 0.50);
  const double full_p99 = Percentile(full_ms, 0.99);
  const double incr_p50 = Percentile(incr_ms, 0.50);
  const double incr_p99 = Percentile(incr_ms, 0.99);
  const double speedup_p50 = incr_p50 > 0.0 ? full_p50 / incr_p50 : 0.0;
  const double speedup_mean =
      Sum(incr_ms) > 0.0 ? Sum(full_ms) / Sum(incr_ms) : 0.0;
  // Steady state = apply + incremental identify per published batch.
  const double steady_s = (Sum(apply_ms) + Sum(incr_ms)) / 1e3;
  const double batches_per_s =
      steady_s > 0.0 ? static_cast<double>(epochs) / steady_s : 0.0;

  TablePrinter table({"identify path", "p50 ms", "p99 ms", "mean ms"});
  table.AddRow("full sweep",
               {full_p50, full_p99, Sum(full_ms) / static_cast<double>(epochs)},
               2);
  table.AddRow("incremental",
               {incr_p50, incr_p99, Sum(incr_ms) / static_cast<double>(epochs)},
               2);
  table.Print(std::cout);
  std::printf("speedup: %.1fx (p50), %.1fx (mean); steady state %.1f "
              "batches/s; parity: %s\n",
              speedup_p50, speedup_mean, batches_per_s,
              all_match ? "every epoch matched" : "DIVERGED");
  std::printf("re-scored %lld regions vs %lld served from cache across %d "
              "epochs\n",
              static_cast<long long>(rescored_total),
              static_cast<long long>(cached_total), epochs);

  json.AddRecord("summary",
                 {{"rows", static_cast<double>(rows)},
                  {"epochs", static_cast<double>(epochs)},
                  {"batch_rows", static_cast<double>(batch_rows)},
                  {"batch_leaves", static_cast<double>(batch_leaves)},
                  {"populated_leaves", static_cast<double>(leaf_table.size())},
                  {"build_s", build_s},
                  {"cold_full_ms", cold_full_s * 1e3},
                  {"full_identify_p50_ms", full_p50},
                  {"full_identify_p99_ms", full_p99},
                  {"incremental_identify_p50_ms", incr_p50},
                  {"incremental_identify_p99_ms", incr_p99},
                  {"speedup_p50", speedup_p50},
                  {"speedup_mean", speedup_mean},
                  {"steady_batches_per_s", batches_per_s},
                  {"digests_match_all_epochs", all_match ? 1.0 : 0.0},
                  {"peak_rss_bytes",
                   static_cast<double>(bench::PeakRssBytes())}});
  if (!json.WriteFile(json_path)) return 74;
  std::printf("wrote %s\n", json_path.c_str());

  const std::string metrics_path =
      bench::FlagValue(argc, argv, "--metrics-json");
  if (!metrics_path.empty()) {
    if (!WriteMetricsJsonFile(metrics_path).ok()) return 74;
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  return all_match ? 0 : 1;
}

}  // namespace
}  // namespace remedy

int main(int argc, char** argv) { return remedy::Run(argc, argv); }
