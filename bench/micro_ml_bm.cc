// Google-benchmark micro benchmarks for the model-training engine: the
// EncodedMatrix cache, the deterministic parallel trainers (random forest
// bagging, blocked logistic-regression gradients, batch-accumulated neural
// network), and the bootstrap replicate loop. These quantify the constant
// factors behind the tradeoff benches' evaluation fan-out.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/metrics.h"
#include "data/encoding.h"
#include "datagen/compas.h"
#include "fairness/bootstrap.h"
#include "ml/logistic_regression.h"
#include "ml/neural_network.h"
#include "ml/random_forest.h"

namespace remedy {
namespace {

const Dataset& CompasData() {
  static const Dataset* data = new Dataset(MakeCompas(2000));
  return *data;
}

const EncodedMatrix& CompasEncoded() {
  static const EncodedMatrix* encoded = new EncodedMatrix(CompasData());
  return *encoded;
}

void BM_EncodedMatrixBuild(benchmark::State& state) {
  const Dataset& data = CompasData();
  for (auto _ : state) {
    EncodedMatrix encoded(data);
    benchmark::DoNotOptimize(encoded.ActiveRow(0));
  }
  state.SetItemsProcessed(state.iterations() * CompasData().NumRows());
}
BENCHMARK(BM_EncodedMatrixBuild);

void BM_RandomForestFit(benchmark::State& state) {
  RandomForestParams params;
  params.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    RandomForest forest(params);
    forest.Fit(CompasData());
    benchmark::DoNotOptimize(forest.NumTrees());
  }
}
BENCHMARK(BM_RandomForestFit)->Arg(1)->Arg(0);

void BM_LogisticRegressionFit(benchmark::State& state) {
  LogisticRegressionParams params;
  params.epochs = 50;
  params.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    LogisticRegression model(params);
    model.FitEncoded(CompasEncoded());
    benchmark::DoNotOptimize(model.intercept());
  }
}
BENCHMARK(BM_LogisticRegressionFit)->Arg(1)->Arg(0);

void BM_NeuralNetworkFit(benchmark::State& state) {
  NeuralNetworkParams params;
  params.epochs = 5;
  params.batch_size = 256;  // several 64-row sub-blocks per batch
  params.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    NeuralNetwork model(params);
    model.FitEncoded(CompasEncoded());
    benchmark::DoNotOptimize(model.PredictProba(CompasData(), 0));
  }
}
BENCHMARK(BM_NeuralNetworkFit)->Arg(1)->Arg(0);

void BM_BootstrapFairnessIndex(benchmark::State& state) {
  const Dataset& data = CompasData();
  // A deliberately biased predictor so the subgroup analysis has signal.
  std::vector<int> predictions(data.NumRows());
  for (int r = 0; r < data.NumRows(); ++r) {
    predictions[r] = data.Value(r, 0) == 0 ? 1 : data.Label(r);
  }
  BootstrapOptions options;
  options.replicates = 50;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BootstrapFairnessIndex(data, predictions, Statistic::kFpr, options));
  }
  state.SetItemsProcessed(state.iterations() * options.replicates);
}
BENCHMARK(BM_BootstrapFairnessIndex)->Arg(1)->Arg(0);

}  // namespace
}  // namespace remedy

// Custom main: peel off our --metrics-json flag before google-benchmark
// parses the command line (it rejects flags it does not know), run the
// suite, then snapshot the pipeline metrics the benchmarks incremented.
int main(int argc, char** argv) {
  std::string metrics_path;
  std::vector<char*> args;
  args.reserve(argc);
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--metrics-json" && i + 1 < argc) {
      metrics_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!metrics_path.empty()) {
    remedy::Status written = remedy::WriteMetricsJsonFile(metrics_path);
    if (!written.ok()) {
      std::fprintf(stderr, "metrics snapshot failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("pipeline metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}
